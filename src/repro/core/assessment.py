"""Assessment of translation quality against ground truth.

The paper's third challenge is that "the translation result needs to be
assessed properly"; TRIPS answers with visual comparison, and this module
adds the quantitative counterpart our simulator's ground truth makes
possible: time-weighted region/event accuracy, triplet-level precision and
recall, sequence edit distance, and cleaning RMSE/floor metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..positioning import PositioningSequence
from ..timeutil import TimeRange
from .semantics import MobilitySemanticsSequence


# ----------------------------------------------------------------------
# Cleaning quality
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CleaningScore:
    """Positional quality of a (possibly cleaned) sequence vs ground truth."""

    rmse: float
    mean_error: float
    max_error: float
    floor_accuracy: float
    matched_records: int

    def __str__(self) -> str:
        return (
            f"rmse={self.rmse:.2f}m mean={self.mean_error:.2f}m "
            f"max={self.max_error:.2f}m floor-acc={self.floor_accuracy:.3f}"
        )


def score_positions(
    candidate: PositioningSequence, truth: PositioningSequence
) -> CleaningScore:
    """Compare per-record positions, matching records by timestamp.

    Records present in only one sequence (e.g. removed by dropout) are
    ignored — they are the complementing layer's problem, not the
    cleaner's.
    """
    truth_by_time = {round(r.timestamp, 6): r for r in truth}
    squared = []
    errors = []
    floor_hits = 0
    matched = 0
    for record in candidate:
        reference = truth_by_time.get(round(record.timestamp, 6))
        if reference is None:
            continue
        matched += 1
        error = record.location.planar_distance_to(reference.location)
        errors.append(error)
        squared.append(error * error)
        if record.floor == reference.floor:
            floor_hits += 1
    if matched == 0:
        return CleaningScore(math.nan, math.nan, math.nan, math.nan, 0)
    return CleaningScore(
        rmse=math.sqrt(sum(squared) / matched),
        mean_error=sum(errors) / matched,
        max_error=max(errors),
        floor_accuracy=floor_hits / matched,
        matched_records=matched,
    )


# ----------------------------------------------------------------------
# Semantics quality
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SemanticsScore:
    """How well an output semantics sequence matches the ground truth."""

    #: Fraction of ground-truth time covered by the correct region.
    region_time_accuracy: float
    #: Fraction of correctly-regioned time whose event also matches.
    event_accuracy: float
    #: Triplet-level recall: truth triplets matched at IoU >= 0.5 + region.
    triplet_recall: float
    #: Triplet-level precision: output triplets that match some truth one.
    triplet_precision: float
    #: Levenshtein distance between deduplicated region strings.
    edit_distance: int
    #: Output triplets per truth triplet (1.0 = same granularity).
    triplet_ratio: float

    @property
    def triplet_f1(self) -> float:
        """Harmonic mean of triplet precision and recall."""
        if self.triplet_precision + self.triplet_recall == 0:
            return 0.0
        return (
            2.0
            * self.triplet_precision
            * self.triplet_recall
            / (self.triplet_precision + self.triplet_recall)
        )

    def __str__(self) -> str:
        return (
            f"region-time={self.region_time_accuracy:.3f} "
            f"event={self.event_accuracy:.3f} "
            f"triplet-F1={self.triplet_f1:.3f} edit={self.edit_distance}"
        )


def score_semantics(
    output: MobilitySemanticsSequence,
    truth: MobilitySemanticsSequence,
    iou_threshold: float = 0.5,
) -> SemanticsScore:
    """Score an output semantics sequence against the ground truth."""
    region_time, event_time, truth_time = _timeline_agreement(output, truth)
    recall, precision = _triplet_match(output, truth, iou_threshold)
    distance = _edit_distance(
        _dedup([s.region_id for s in truth]),
        _dedup([s.region_id for s in output]),
    )
    ratio = len(output) / len(truth) if len(truth) > 0 else 0.0
    return SemanticsScore(
        region_time_accuracy=region_time / truth_time if truth_time > 0 else 0.0,
        event_accuracy=event_time / region_time if region_time > 0 else 0.0,
        triplet_recall=recall,
        triplet_precision=precision,
        edit_distance=distance,
        triplet_ratio=ratio,
    )


def _timeline_agreement(
    output: MobilitySemanticsSequence, truth: MobilitySemanticsSequence
) -> tuple[float, float, float]:
    """(correct-region seconds, correct-region-and-event seconds, truth seconds)."""
    region_time = 0.0
    event_time = 0.0
    truth_time = sum(s.duration for s in truth)
    for truth_triplet in truth:
        for out_triplet in output:
            overlap = truth_triplet.time_range.intersection(
                out_triplet.time_range
            )
            if overlap is None:
                continue
            if out_triplet.region_id == truth_triplet.region_id:
                region_time += overlap.duration
                if out_triplet.event == truth_triplet.event:
                    event_time += overlap.duration
    return region_time, event_time, truth_time


def _triplet_match(
    output: MobilitySemanticsSequence,
    truth: MobilitySemanticsSequence,
    iou_threshold: float,
) -> tuple[float, float]:
    if len(truth) == 0:
        return 0.0, 0.0
    matched_truth = 0
    used_output: set[int] = set()
    for truth_triplet in truth:
        best_index = -1
        best_iou = iou_threshold
        for index, out_triplet in enumerate(output):
            if index in used_output:
                continue
            if out_triplet.region_id != truth_triplet.region_id:
                continue
            iou = truth_triplet.time_range.iou(out_triplet.time_range)
            if iou >= best_iou:
                best_iou = iou
                best_index = index
        if best_index >= 0:
            matched_truth += 1
            used_output.add(best_index)
    recall = matched_truth / len(truth)
    precision = len(used_output) / len(output) if len(output) > 0 else 0.0
    return recall, precision


def _dedup(items: list[str]) -> list[str]:
    """Collapse consecutive repeats."""
    out: list[str] = []
    for item in items:
        if not out or out[-1] != item:
            out.append(item)
    return out


def _edit_distance(a: list[str], b: list[str]) -> int:
    """Levenshtein distance between two string lists."""
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, item_a in enumerate(a, start=1):
        current = [i] + [0] * len(b)
        for j, item_b in enumerate(b, start=1):
            cost = 0 if item_a == item_b else 1
            current[j] = min(
                previous[j] + 1,  # deletion
                current[j - 1] + 1,  # insertion
                previous[j - 1] + cost,  # substitution
            )
        previous = current
    return previous[-1]


# ----------------------------------------------------------------------
# Gap-filling quality (E-F3c)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GapFillScore:
    """Quality of inferred semantics inside known gap windows."""

    inferred_count: int
    correct_region_count: int

    @property
    def region_precision(self) -> float:
        """Fraction of inferred triplets whose region matches the truth."""
        if self.inferred_count == 0:
            return 0.0
        return self.correct_region_count / self.inferred_count


def score_gap_fill(
    output: MobilitySemanticsSequence, truth: MobilitySemanticsSequence
) -> GapFillScore:
    """Check every *inferred* triplet against the truth timeline.

    An inferred triplet counts as correct when the truth region occupying
    the majority of its window matches.
    """
    inferred = [s for s in output if s.inferred]
    correct = 0
    for triplet in inferred:
        dominant = _dominant_truth_region(triplet.time_range, truth)
        if dominant == triplet.region_id:
            correct += 1
    return GapFillScore(len(inferred), correct)


def _dominant_truth_region(
    window: TimeRange, truth: MobilitySemanticsSequence
) -> str | None:
    overlap_by_region: dict[str, float] = {}
    for triplet in truth:
        overlap = window.intersection(triplet.time_range)
        if overlap is not None:
            overlap_by_region[triplet.region_id] = (
                overlap_by_region.get(triplet.region_id, 0.0) + overlap.duration
            )
    if not overlap_by_region:
        return None
    return max(sorted(overlap_by_region), key=lambda r: overlap_by_region[r])
