"""The Translator: three-layer pipeline orchestration.

"The Translator constructs a sequence of mobility semantics for each
individual positioning sequence" (paper §2) by chaining the Raw Data
Cleaner, the Annotator and the Complementor (Figure 3).  Batch translation
is two-phase: every sequence is cleaned and annotated first, the mobility
knowledge is built from *all* original semantics ("referring to other
generated mobility semantics sequences"), and only then is each sequence
complemented.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..dsm import DigitalSpaceModel
from ..errors import AnnotationError
from ..positioning import PositioningSequence
from .annotation import (
    AnnotationResult,
    AnnotatorConfig,
    MobilitySemanticsAnnotator,
)
from .annotation.annotator import EventModel
from .cleaning import CleaningConfig, CleaningResult, RawDataCleaner
from .complementing import (
    ComplementorConfig,
    ComplementResult,
    MobilityKnowledge,
    MobilitySemanticsComplementor,
)
from .semantics import MobilitySemanticsSequence


@dataclass(frozen=True)
class TranslatorConfig:
    """End-to-end configuration of the three-layer framework.

    The enable flags exist for the ablation experiments (E-X2): disabling a
    layer passes its input through unchanged.
    """

    cleaning: CleaningConfig = CleaningConfig()
    annotation: AnnotatorConfig = AnnotatorConfig()
    complementing: ComplementorConfig = ComplementorConfig()
    knowledge_smoothing: float = 1.0
    enable_cleaning: bool = True
    enable_complementing: bool = True


@dataclass(frozen=True)
class TranslationResult:
    """Everything the translation of one sequence produced.

    All intermediate artifacts are kept because the Viewer must "trace the
    input, output and intermediate data involved in the translation".
    """

    device_id: str
    raw: PositioningSequence
    cleaning: CleaningResult
    annotation: AnnotationResult
    complement: ComplementResult | None

    @property
    def cleaned(self) -> PositioningSequence:
        """The cleaned positioning sequence."""
        return self.cleaning.cleaned

    @property
    def original_semantics(self) -> MobilitySemanticsSequence:
        """Annotator output, before complementing."""
        return self.annotation.sequence

    @property
    def semantics(self) -> MobilitySemanticsSequence:
        """The final mobility semantics sequence."""
        if self.complement is not None:
            return self.complement.sequence
        return self.annotation.sequence

    def export(self, path: str | Path) -> None:
        """Write the translation-result file of workflow step (4)."""
        payload = {
            "device_id": self.device_id,
            "raw_record_count": len(self.raw),
            "cleaned_record_count": len(self.cleaned),
            "cleaning_report": {
                "invalid": self.cleaning.report.invalid_count,
                "floor_corrected": len(self.cleaning.report.floor_corrected),
                "interpolated": len(self.cleaning.report.interpolated),
            },
            "semantics": self.semantics.to_dict()["semantics"],
        }
        Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


@dataclass
class BatchTranslationResult:
    """Results for a batch plus the shared mobility knowledge."""

    results: list[TranslationResult] = field(default_factory=list)
    knowledge: MobilityKnowledge | None = None
    elapsed_seconds: float = 0.0

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def by_device(self, device_id: str) -> TranslationResult:
        """The result for one device."""
        for result in self.results:
            if result.device_id == device_id:
                return result
        raise AnnotationError(f"no translation result for device {device_id!r}")

    @property
    def total_records(self) -> int:
        """Raw records across the batch."""
        return sum(len(r.raw) for r in self.results)

    @property
    def total_semantics(self) -> int:
        """Final semantics triplets across the batch."""
        return sum(len(r.semantics) for r in self.results)

    @property
    def records_per_second(self) -> float:
        """Batch translation throughput."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.total_records / self.elapsed_seconds


class Translator:
    """The backend component of TRIPS (Figure 1, center)."""

    def __init__(
        self,
        model: DigitalSpaceModel,
        event_model: EventModel | None = None,
        config: TranslatorConfig | None = None,
    ):
        self.model = model
        self.config = config if config is not None else TranslatorConfig()
        self.cleaner = RawDataCleaner(model.topology, self.config.cleaning)
        self.annotator = MobilitySemanticsAnnotator(
            model, event_model, self.config.annotation
        )

    # ------------------------------------------------------------------
    # Single-sequence path
    # ------------------------------------------------------------------
    def clean_and_annotate(
        self, sequence: PositioningSequence
    ) -> tuple[CleaningResult, AnnotationResult]:
        """Layers 1+2 for one sequence (phase one of batch translation)."""
        if self.config.enable_cleaning:
            cleaning = self.cleaner.clean(sequence)
        else:
            from .cleaning import CleaningReport

            cleaning = CleaningResult(
                sequence, sequence, CleaningReport(total_records=len(sequence))
            )
        annotation = self.annotator.annotate(cleaning.cleaned)
        return cleaning, annotation

    def translate(
        self,
        sequence: PositioningSequence,
        knowledge: MobilityKnowledge | None = None,
    ) -> TranslationResult:
        """Full three-layer translation of one sequence.

        Without pre-built ``knowledge`` the complementing layer falls back
        to knowledge built from this sequence alone — batch translation is
        the intended mode, exactly as in the paper.
        """
        cleaning, annotation = self.clean_and_annotate(sequence)
        complement = None
        if self.config.enable_complementing and self.model.region_count > 0:
            if knowledge is None:
                knowledge = self._build_knowledge([annotation.sequence])
            complementor = MobilitySemanticsComplementor(
                knowledge, self.model.topology, self.config.complementing
            )
            complement = complementor.complement(annotation.sequence)
        return TranslationResult(
            device_id=sequence.device_id,
            raw=sequence,
            cleaning=cleaning,
            annotation=annotation,
            complement=complement,
        )

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------
    def translate_batch(
        self, sequences: list[PositioningSequence]
    ) -> BatchTranslationResult:
        """Two-phase batch translation with shared mobility knowledge."""
        started = time.perf_counter()
        phase_one: list[tuple[PositioningSequence, CleaningResult, AnnotationResult]] = []
        for sequence in sequences:
            cleaning, annotation = self.clean_and_annotate(sequence)
            phase_one.append((sequence, cleaning, annotation))

        knowledge: MobilityKnowledge | None = None
        complementor: MobilitySemanticsComplementor | None = None
        if self.config.enable_complementing and self.model.region_count > 0:
            knowledge = self._build_knowledge(
                [annotation.sequence for _, _, annotation in phase_one]
            )
            complementor = MobilitySemanticsComplementor(
                knowledge, self.model.topology, self.config.complementing
            )

        results: list[TranslationResult] = []
        for sequence, cleaning, annotation in phase_one:
            complement = (
                complementor.complement(annotation.sequence)
                if complementor is not None
                else None
            )
            results.append(
                TranslationResult(
                    device_id=sequence.device_id,
                    raw=sequence,
                    cleaning=cleaning,
                    annotation=annotation,
                    complement=complement,
                )
            )
        elapsed = time.perf_counter() - started
        return BatchTranslationResult(results, knowledge, elapsed)

    def _build_knowledge(
        self, sequences: list[MobilitySemanticsSequence]
    ) -> MobilityKnowledge:
        regions = [r.region_id for r in self.model.regions()]
        return MobilityKnowledge.from_sequences(
            sequences, regions, smoothing=self.config.knowledge_smoothing
        )
