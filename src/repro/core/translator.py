"""The Translator: three-layer pipeline orchestration.

"The Translator constructs a sequence of mobility semantics for each
individual positioning sequence" (paper §2) by chaining the Raw Data
Cleaner, the Annotator and the Complementor (Figure 3).  Batch translation
is two-phase: every sequence is cleaned and annotated first, the mobility
knowledge is built from *all* original semantics ("referring to other
generated mobility semantics sequences"), and only then is each sequence
complemented.

The two phases are exposed as module-level pure functions
(:func:`run_phase_one`, :func:`run_phase_two`, :func:`build_batch_knowledge`,
:func:`build_partial_knowledge`, :func:`assemble_results`) so the parallel
batch engine in :mod:`repro.engine` can fan them out across worker pools
while reproducing ``Translator.translate_batch`` exactly.  Phase-one
workers can additionally emit a per-chunk
:class:`~repro.core.complementing.PartialKnowledge` shard
(``run_phase_one_chunk(..., emit_partial=True)``), turning the knowledge
barrier into a cheap shard merge.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..dsm import DigitalSpaceModel
from ..errors import AnnotationError
from ..positioning import PositioningSequence
from .annotation import (
    AnnotationResult,
    AnnotatorConfig,
    MobilitySemanticsAnnotator,
)
from .annotation.annotator import EventModel
from .cleaning import CleaningConfig, CleaningResult, RawDataCleaner
from .complementing import (
    ComplementorConfig,
    ComplementResult,
    MobilityKnowledge,
    MobilitySemanticsComplementor,
    PartialKnowledge,
)
from .semantics import MobilitySemanticsSequence


@dataclass(frozen=True)
class TranslatorConfig:
    """End-to-end configuration of the three-layer framework.

    The enable flags exist for the ablation experiments (E-X2): disabling a
    layer passes its input through unchanged.
    """

    cleaning: CleaningConfig = CleaningConfig()
    annotation: AnnotatorConfig = AnnotatorConfig()
    complementing: ComplementorConfig = ComplementorConfig()
    knowledge_smoothing: float = 1.0
    enable_cleaning: bool = True
    enable_complementing: bool = True


@dataclass(frozen=True)
class TranslationResult:
    """Everything the translation of one sequence produced.

    All intermediate artifacts are kept because the Viewer must "trace the
    input, output and intermediate data involved in the translation".
    """

    device_id: str
    raw: PositioningSequence
    cleaning: CleaningResult
    annotation: AnnotationResult
    complement: ComplementResult | None

    @property
    def cleaned(self) -> PositioningSequence:
        """The cleaned positioning sequence."""
        return self.cleaning.cleaned

    @property
    def original_semantics(self) -> MobilitySemanticsSequence:
        """Annotator output, before complementing."""
        return self.annotation.sequence

    @property
    def semantics(self) -> MobilitySemanticsSequence:
        """The final mobility semantics sequence."""
        if self.complement is not None:
            return self.complement.sequence
        return self.annotation.sequence

    def export(self, path: str | Path) -> None:
        """Write the translation-result file of workflow step (4)."""
        payload = {
            "device_id": self.device_id,
            "raw_record_count": len(self.raw),
            "cleaned_record_count": len(self.cleaned),
            "cleaning_report": {
                "invalid": self.cleaning.report.invalid_count,
                "floor_corrected": len(self.cleaning.report.floor_corrected),
                "interpolated": len(self.cleaning.report.interpolated),
            },
            "semantics": self.semantics.to_dict()["semantics"],
        }
        Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


@dataclass(frozen=True)
class PhaseStats:
    """Timing of one batch-translation phase."""

    name: str
    seconds: float
    items: int

    @property
    def items_per_second(self) -> float:
        """Phase throughput in items (sequences) per second."""
        if self.seconds <= 0:
            return 0.0
        return self.items / self.seconds


@dataclass(frozen=True)
class BatchStats:
    """Execution profile of one batch translation.

    Filled by both the serial :meth:`Translator.translate_batch` path
    (``backend="inline"``) and the parallel :class:`repro.engine.Engine`,
    so serial-vs-parallel comparisons read off the same structure.
    """

    backend: str
    workers: int
    chunk_size: int
    chunk_count: int
    phases: tuple[PhaseStats, ...] = ()

    def phase(self, name: str) -> PhaseStats:
        """The stats of the named phase."""
        for stats in self.phases:
            if stats.name == name:
                return stats
        raise KeyError(f"no phase named {name!r} in batch stats")

    @property
    def total_seconds(self) -> float:
        """Wall time summed across phases."""
        return sum(stats.seconds for stats in self.phases)

    def format_table(self) -> str:
        """Small fixed-width rendering for CLI / bench output."""
        lines = [
            f"backend={self.backend} workers={self.workers} "
            f"chunk_size={self.chunk_size} chunks={self.chunk_count}"
        ]
        for stats in self.phases:
            lines.append(
                f"  {stats.name:<16} {stats.seconds:8.3f}s  "
                f"{stats.items:6d} items  {stats.items_per_second:10.1f} items/s"
            )
        return "\n".join(lines)


@dataclass
class BatchTranslationResult:
    """Results for a batch plus the shared mobility knowledge."""

    results: list[TranslationResult] = field(default_factory=list)
    knowledge: MobilityKnowledge | None = None
    elapsed_seconds: float = 0.0
    stats: BatchStats | None = None
    _device_index: dict[str, TranslationResult] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _indexed_count: int = field(
        default=-1, init=False, repr=False, compare=False
    )

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def by_device(self, device_id: str) -> TranslationResult:
        """The first result for one device (O(1) via a lazily built index).

        A device id can legitimately appear more than once — streaming
        translation yields one result per device per window — so the
        index keeps the *first* occurrence, matching iteration order.
        The index is rebuilt when ``results`` grows or shrinks; replacing
        an element in place is not tracked.
        """
        if self._indexed_count != len(self.results):
            index: dict[str, TranslationResult] = {}
            for result in self.results:
                index.setdefault(result.device_id, result)
            self._device_index = index
            self._indexed_count = len(self.results)
        try:
            return self._device_index[device_id]
        except KeyError:
            raise AnnotationError(
                f"no translation result for device {device_id!r}"
            ) from None

    @property
    def total_records(self) -> int:
        """Raw records across the batch."""
        return sum(len(r.raw) for r in self.results)

    @property
    def total_semantics(self) -> int:
        """Final semantics triplets across the batch."""
        return sum(len(r.semantics) for r in self.results)

    @property
    def records_per_second(self) -> float:
        """Batch translation throughput."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.total_records / self.elapsed_seconds


# ----------------------------------------------------------------------
# Phase functions
#
# Pure per-sequence / per-chunk units of work: all state comes in through
# the arguments, so the batch engine can run them on any worker (including
# a forked process, where ``translator`` is the worker's own copy).
# ----------------------------------------------------------------------
def run_phase_one(
    translator: "Translator", sequence: PositioningSequence
) -> tuple[CleaningResult, AnnotationResult]:
    """Phase one (clean + annotate) for one sequence."""
    return translator.clean_and_annotate(sequence)


@dataclass(frozen=True)
class PhaseOneChunk:
    """One chunk's phase-one output.

    ``pairs`` holds the per-sequence (cleaning, annotation) results in
    chunk order; ``partial`` is the chunk's pre-aggregated knowledge shard
    when the caller asked for one (the engine's sharded barrier), else
    ``None``.
    """

    pairs: list[tuple[CleaningResult, AnnotationResult]]
    partial: PartialKnowledge | None = None
    #: Worker-side wall time for the chunk (monotonic clock), carried on
    #: the result so per-chunk telemetry survives the ``processes``
    #: backend without a shared registry.  Excluded from equality: two
    #: runs of the same chunk are the *same* phase-one output regardless
    #: of how long they took.
    seconds: float | None = field(default=None, compare=False)

    @property
    def annotated(self) -> list[MobilitySemanticsSequence]:
        """The chunk's annotator outputs, in chunk order."""
        return [annotation.sequence for _, annotation in self.pairs]


def run_phase_one_chunk(
    translator: "Translator",
    sequences: list[PositioningSequence],
    emit_partial: bool = False,
) -> PhaseOneChunk:
    """Phase one for a chunk of sequences, preserving chunk order.

    With ``emit_partial=True`` the worker also aggregates its chunk's
    :class:`~repro.core.complementing.PartialKnowledge` shard, so the
    caller's knowledge barrier becomes an O(#regions + #edges) merge per
    chunk instead of re-observing every annotated sequence.
    """
    pairs = [run_phase_one(translator, sequence) for sequence in sequences]
    partial = None
    if emit_partial:
        partial = build_partial_knowledge(
            translator, [annotation.sequence for _, annotation in pairs]
        )
    return PhaseOneChunk(pairs, partial)


def build_partial_knowledge(
    translator: "Translator",
    annotated: list[MobilitySemanticsSequence],
) -> PartialKnowledge | None:
    """One chunk's additive knowledge shard.

    ``None`` under the same conditions :func:`build_batch_knowledge`
    returns ``None`` (complementing disabled, or no semantic regions) —
    both read the gate from :meth:`Translator.knowledge_regions`.
    """
    regions = translator.knowledge_regions()
    if regions is None:
        return None
    return PartialKnowledge.from_sequences(annotated, regions)


def build_batch_knowledge(
    translator: "Translator",
    annotated: list[MobilitySemanticsSequence] | None = None,
    partials: list[PartialKnowledge] | None = None,
) -> MobilityKnowledge | None:
    """The barrier phase: global knowledge for the whole batch.

    Two paths produce identical knowledge:

    - **rebuild** — pass ``annotated``: re-observe every annotated
      sequence on the caller (the serial reference behaviour);
    - **merge** — pass ``partials``: fold pre-aggregated per-chunk shards,
      O(#regions + #edges) per shard regardless of batch size.

    Returns ``None`` when the complementing layer is disabled or the model
    has no semantic regions — exactly the conditions under which
    ``translate_batch`` skips phase two.
    """
    regions = translator.knowledge_regions()
    if regions is None:
        return None
    if partials is not None:
        return MobilityKnowledge.from_partials(
            partials,
            regions=regions,
            smoothing=translator.config.knowledge_smoothing,
        )
    if annotated is None:
        raise AnnotationError(
            "build_batch_knowledge needs annotated sequences or partial "
            "knowledge shards"
        )
    return MobilityKnowledge.from_sequences(
        annotated,
        regions,
        smoothing=translator.config.knowledge_smoothing,
    )


def run_phase_two(
    translator: "Translator",
    knowledge: MobilityKnowledge,
    sequence: MobilitySemanticsSequence,
) -> ComplementResult:
    """Phase two (complementing) for one annotated sequence."""
    return run_phase_two_chunk(translator, (knowledge, [sequence]))[0]


def run_phase_two_chunk(
    translator: "Translator",
    payload: tuple[MobilityKnowledge, list[MobilitySemanticsSequence]],
) -> list[ComplementResult]:
    """Phase two for a chunk of annotated sequences, preserving order.

    Primes the compiled transition model once up front — the compile
    (or attach-cache hit) lands per chunk rather than inside the first
    gap's inference, and the compile/hit telemetry ticks exactly once per
    chunk.  The memo hit/miss counters accumulated during the sequence
    loop are flushed in one registry interaction at the end.
    """
    knowledge, sequences = payload
    complementor = MobilitySemanticsComplementor(
        knowledge, translator.model.topology, translator.config.complementing
    )
    complementor.prime()
    try:
        return [complementor.complement(sequence) for sequence in sequences]
    finally:
        complementor.flush_telemetry()


def assemble_results(
    sequences: list[PositioningSequence],
    phase_one: list[tuple[CleaningResult, AnnotationResult]],
    complements: list[ComplementResult] | None,
) -> list[TranslationResult]:
    """Zip the phases back into per-device results, in input order."""
    if len(phase_one) != len(sequences):
        raise AnnotationError(
            f"phase one produced {len(phase_one)} results for "
            f"{len(sequences)} sequences"
        )
    if complements is not None and len(complements) != len(sequences):
        raise AnnotationError(
            f"phase two produced {len(complements)} results for "
            f"{len(sequences)} sequences"
        )
    results: list[TranslationResult] = []
    for index, (sequence, (cleaning, annotation)) in enumerate(
        zip(sequences, phase_one)
    ):
        results.append(
            TranslationResult(
                device_id=sequence.device_id,
                raw=sequence,
                cleaning=cleaning,
                annotation=annotation,
                complement=complements[index] if complements is not None else None,
            )
        )
    return results


class Translator:
    """The backend component of TRIPS (Figure 1, center)."""

    def __init__(
        self,
        model: DigitalSpaceModel,
        event_model: EventModel | None = None,
        config: TranslatorConfig | None = None,
    ):
        self.model = model
        self.config = config if config is not None else TranslatorConfig()
        self.cleaner = RawDataCleaner(model.topology, self.config.cleaning)
        self.annotator = MobilitySemanticsAnnotator(
            model, event_model, self.config.annotation
        )

    # ------------------------------------------------------------------
    # Single-sequence path
    # ------------------------------------------------------------------
    def clean_and_annotate(
        self, sequence: PositioningSequence
    ) -> tuple[CleaningResult, AnnotationResult]:
        """Layers 1+2 for one sequence (phase one of batch translation)."""
        if self.config.enable_cleaning:
            cleaning = self.cleaner.clean(sequence)
        else:
            from .cleaning import CleaningReport

            cleaning = CleaningResult(
                sequence, sequence, CleaningReport(total_records=len(sequence))
            )
        annotation = self.annotator.annotate(cleaning.cleaned)
        return cleaning, annotation

    def knowledge_regions(self) -> list[str] | None:
        """The knowledge vocabulary, or ``None`` when knowledge is off.

        The single source of truth for the gate every knowledge build
        shares (complementing enabled, at least one semantic region) and
        for the region-id vocabulary, so the sharded and rebuild paths
        cannot drift apart.
        """
        if not self.config.enable_complementing:
            return None
        if self.model.region_count == 0:
            return None
        return [region.region_id for region in self.model.regions()]

    def translate(
        self,
        sequence: PositioningSequence,
        knowledge: MobilityKnowledge | None = None,
    ) -> TranslationResult:
        """Full three-layer translation of one sequence.

        Without pre-built ``knowledge`` the complementing layer falls back
        to knowledge built from this sequence alone — batch translation is
        the intended mode, exactly as in the paper.
        """
        cleaning, annotation = self.clean_and_annotate(sequence)
        complement = None
        if self.knowledge_regions() is not None:
            if knowledge is None:
                knowledge = build_batch_knowledge(
                    self, [annotation.sequence]
                )
            complement = run_phase_two(self, knowledge, annotation.sequence)
        return TranslationResult(
            device_id=sequence.device_id,
            raw=sequence,
            cleaning=cleaning,
            annotation=annotation,
            complement=complement,
        )

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------
    def translate_batch(
        self, sequences: list[PositioningSequence]
    ) -> BatchTranslationResult:
        """Two-phase batch translation with shared mobility knowledge."""
        started = time.perf_counter()
        sequences = list(sequences)
        phase_one = run_phase_one_chunk(self, sequences).pairs
        phase_one_done = time.perf_counter()

        knowledge = build_batch_knowledge(
            self, [annotation.sequence for _, annotation in phase_one]
        )
        knowledge_done = time.perf_counter()

        complements: list[ComplementResult] | None = None
        if knowledge is not None:
            complements = run_phase_two_chunk(
                self,
                (knowledge, [annotation.sequence for _, annotation in phase_one]),
            )
        finished = time.perf_counter()

        results = assemble_results(sequences, phase_one, complements)
        count = len(sequences)
        stats = BatchStats(
            backend="inline",
            workers=1,
            chunk_size=max(count, 1),
            chunk_count=1 if count else 0,
            phases=(
                PhaseStats("clean+annotate", phase_one_done - started, count),
                PhaseStats("knowledge", knowledge_done - phase_one_done, count),
                PhaseStats("complement", finished - knowledge_done, count),
            ),
        )
        return BatchTranslationResult(
            results, knowledge, finished - started, stats
        )
