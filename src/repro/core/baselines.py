"""Baseline translators from the paper's related-work comparison.

TRIPS is motivated against GPS-era systems: the trajectory reconstruction
manager of Marketos et al. [10] (threshold-driven stop/move detection with
"temporal and spatial gaps, maximum speed, maximum noise duration, and
tolerance distance in a stop") and the stop/move-only semantic annotation
platform of Yan et al. [12].  These baselines make the comparison
measurable (experiment E-X3): same inputs, same assessment, no indoor
topology, no learning, no knowledge-based complementing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dsm import DigitalSpaceModel, Topology
from ..errors import AnnotationError
from ..positioning import PositioningSequence, RawPositioningRecord
from ..timeutil import TimeRange
from .annotation import SpatialMatcher
from .complementing import MobilityKnowledge
from .semantics import (
    EVENT_PASS_BY,
    EVENT_STAY,
    MobilitySemantic,
    MobilitySemanticsSequence,
)


@dataclass(frozen=True)
class StopMoveConfig:
    """The exact parameter set of the [10]-style reconstructor."""

    temporal_gap: float = 300.0
    spatial_gap: float = 50.0
    max_speed: float = 2.5
    max_noise_duration: float = 30.0
    stop_tolerance_distance: float = 5.0
    min_stop_duration: float = 60.0

    def __post_init__(self) -> None:
        if self.stop_tolerance_distance <= 0 or self.min_stop_duration <= 0:
            raise AnnotationError("stop parameters must be positive")


class StopMoveReconstructor:
    """Threshold-based stop/move translation without indoor topology.

    Noise filtering uses *straight-line* speed (the GPS assumption — this
    is precisely what fails indoors, since walls make true paths longer);
    stops are maximal runs staying within ``stop_tolerance_distance`` of
    the run centroid for at least ``min_stop_duration``.  Stops map to
    ``stay`` and moves to ``pass-by`` so the assessment can compare
    like-for-like with TRIPS output.
    """

    def __init__(self, model: DigitalSpaceModel, config: StopMoveConfig | None = None):
        self.model = model
        self.config = config if config is not None else StopMoveConfig()
        self.matcher = SpatialMatcher(model)

    def translate(self, sequence: PositioningSequence) -> MobilitySemanticsSequence:
        """Stop/move semantics for one raw sequence."""
        records = self._filter_noise(list(sequence.records))
        if len(records) < 2:
            return MobilitySemanticsSequence(sequence.device_id, [])
        segments = self._segment_stops(records)
        semantics: list[MobilitySemantic] = []
        for is_stop, segment in segments:
            if len(segment) < 2:
                continue
            match = self.matcher.match(segment)
            if match is None:
                continue
            semantics.append(
                MobilitySemantic(
                    event=EVENT_STAY if is_stop else EVENT_PASS_BY,
                    region_id=match.region_id,
                    region_name=match.region_name,
                    time_range=TimeRange(
                        segment[0].timestamp, segment[-1].timestamp
                    ),
                    confidence=1.0,
                )
            )
        return MobilitySemanticsSequence(
            sequence.device_id, semantics
        ).merged_consecutive()

    def _filter_noise(
        self, records: list[RawPositioningRecord]
    ) -> list[RawPositioningRecord]:
        """Drop records implying straight-line speed above ``max_speed``.

        Noise bursts longer than ``max_noise_duration`` are kept (per [10],
        a long 'noise' episode is treated as real movement).
        """
        if not records:
            return []
        kept = [records[0]]
        noise_started: float | None = None
        for record in records[1:]:
            previous = kept[-1]
            elapsed = record.timestamp - previous.timestamp
            distance = previous.location.planar_distance_to(record.location)
            implied = distance / elapsed if elapsed > 0 else float("inf")
            if implied <= self.config.max_speed or record.floor != previous.floor:
                kept.append(record)
                noise_started = None
            else:
                if noise_started is None:
                    noise_started = record.timestamp
                elif (
                    record.timestamp - noise_started
                    > self.config.max_noise_duration
                ):
                    kept.append(record)  # sustained: accept as real movement
                    noise_started = None
        return kept

    def _segment_stops(
        self, records: list[RawPositioningRecord]
    ) -> list[tuple[bool, list[RawPositioningRecord]]]:
        segments: list[tuple[bool, list[RawPositioningRecord]]] = []
        index = 0
        move_buffer: list[RawPositioningRecord] = []
        while index < len(records):
            stop_end = self._extend_stop(records, index)
            duration = records[stop_end - 1].timestamp - records[index].timestamp
            if duration >= self.config.min_stop_duration:
                if move_buffer:
                    segments.append((False, move_buffer))
                    move_buffer = []
                segments.append((True, records[index:stop_end]))
                index = stop_end
            else:
                move_buffer.append(records[index])
                index += 1
        if move_buffer:
            segments.append((False, move_buffer))
        return segments

    def _extend_stop(
        self, records: list[RawPositioningRecord], start: int
    ) -> int:
        """Largest ``end`` with all records in ``[start, end)`` within
        tolerance of their running centroid."""
        sum_x = records[start].location.x
        sum_y = records[start].location.y
        count = 1
        end = start + 1
        while end < len(records):
            candidate = records[end]
            centroid_x = (sum_x + candidate.location.x) / (count + 1)
            centroid_y = (sum_y + candidate.location.y) / (count + 1)
            spread = max(
                (
                    ((r.location.x - centroid_x) ** 2 + (r.location.y - centroid_y) ** 2)
                    ** 0.5
                    for r in records[start : end + 1]
                ),
            )
            if spread > self.config.stop_tolerance_distance:
                break
            sum_x += candidate.location.x
            sum_y += candidate.location.y
            count += 1
            end += 1
        return end


class NearestRegionAnnotator:
    """Rule-based per-record region annotation (the [12]-style arm).

    Every record votes for its containing region; consecutive same-region
    runs become triplets, with ``stay`` when the run lasts at least
    ``stay_threshold`` seconds and ``pass-by`` otherwise.  No density
    splitting, no learned event model.
    """

    def __init__(self, model: DigitalSpaceModel, stay_threshold: float = 90.0):
        if stay_threshold <= 0:
            raise AnnotationError("stay_threshold must be positive")
        self.model = model
        self.stay_threshold = stay_threshold

    def translate(self, sequence: PositioningSequence) -> MobilitySemanticsSequence:
        """Run-length region semantics for one sequence."""
        runs: list[tuple[str, str, int, int]] = []  # (id, name, start, end)
        current_id: str | None = None
        current_name = ""
        run_start = 0
        for index, record in enumerate(sequence):
            region = self.model.primary_region_at(record.location)
            region_id = region.region_id if region is not None else None
            if region_id != current_id:
                if current_id is not None:
                    runs.append((current_id, current_name, run_start, index))
                current_id = region_id
                current_name = region.name if region is not None else ""
                run_start = index
        if current_id is not None:
            runs.append((current_id, current_name, run_start, len(sequence)))
        semantics: list[MobilitySemantic] = []
        for region_id, region_name, start, end in runs:
            if end - start < 2:
                continue
            window = TimeRange(
                sequence[start].timestamp, sequence[end - 1].timestamp
            )
            event = (
                EVENT_STAY if window.duration >= self.stay_threshold else EVENT_PASS_BY
            )
            semantics.append(
                MobilitySemantic(
                    event=event,
                    region_id=region_id,
                    region_name=region_name,
                    time_range=window,
                    record_indexes=tuple(range(start, end)),
                )
            )
        return MobilitySemanticsSequence(sequence.device_id, semantics)


class DistanceOnlyGapFiller:
    """Gap filling by shortest region path, ignoring mobility knowledge.

    The no-knowledge ablation arm for E-F3c: intermediates come from the
    region graph's weighted shortest path and the gap time is split
    uniformly.  Everything the MAP inference adds (transition priors, dwell
    statistics, duration fit) is absent by design.
    """

    def __init__(self, topology: Topology, gap_threshold: float = 120.0):
        self.topology = topology
        self.gap_threshold = gap_threshold

    def complement(
        self, original: MobilitySemanticsSequence
    ) -> MobilitySemanticsSequence:
        """Fill gaps with shortest-path regions, uniform time split."""
        filled: list[MobilitySemantic] = list(original.semantics)
        for index, gap in original.gaps(self.gap_threshold):
            before = original[index]
            after = original[index + 1]
            try:
                path = self.topology.region_path(
                    before.region_id, after.region_id
                )
            except Exception:
                continue
            intermediates = path[1:-1]
            if not intermediates:
                continue
            share = gap.duration / len(intermediates)
            cursor = gap.start
            for region_id in intermediates:
                window = TimeRange(cursor, cursor + share)
                cursor = window.end
                name = (
                    self.topology.model.region(region_id).name
                    if self.topology.model.has_region(region_id)
                    else region_id
                )
                filled.append(
                    MobilitySemantic(
                        event=EVENT_PASS_BY,
                        region_id=region_id,
                        region_name=name,
                        time_range=window,
                        confidence=0.5,
                        inferred=True,
                    )
                )
        return MobilitySemanticsSequence(original.device_id, filled)
