"""Unit tests for the Translator pipeline and batch translation."""

import json

import pytest

from repro.core import (
    Translator,
    TranslatorConfig,
)
from repro.core.cleaning import CleaningConfig
from repro.errors import AnnotationError
from repro.positioning import inject_dropout


class TestSingleTranslation:
    def test_end_to_end_artifacts(self, mall3, simulated):
        result = Translator(mall3).translate(simulated.raw)
        assert result.device_id == simulated.device_id
        assert result.raw is simulated.raw
        assert len(result.cleaned) == len(simulated.raw)
        assert len(result.semantics) > 0
        assert result.annotation.snippets

    def test_semantics_within_observation_window(self, mall3, simulated):
        result = Translator(mall3).translate(simulated.raw)
        window = simulated.raw.time_range
        for semantic in result.semantics:
            assert semantic.time_range.start >= window.start - 1.0
            assert semantic.time_range.end <= window.end + 1.0

    def test_cleaning_disabled_passthrough(self, mall3, simulated):
        config = TranslatorConfig(enable_cleaning=False)
        result = Translator(mall3, config=config).translate(simulated.raw)
        assert result.cleaned.records == simulated.raw.records
        assert result.cleaning.report.invalid_count == 0

    def test_complementing_disabled(self, mall3, simulated):
        config = TranslatorConfig(enable_complementing=False)
        result = Translator(mall3, config=config).translate(simulated.raw)
        assert result.complement is None
        assert result.semantics is result.original_semantics

    def test_export_file(self, mall3, simulated, tmp_path):
        result = Translator(mall3).translate(simulated.raw)
        path = tmp_path / "out.json"
        result.export(path)
        payload = json.loads(path.read_text())
        assert payload["device_id"] == simulated.device_id
        assert payload["raw_record_count"] == len(simulated.raw)
        assert len(payload["semantics"]) == len(result.semantics)


class TestBatchTranslation:
    def test_batch_covers_all_devices(self, mall3, population):
        translator = Translator(mall3)
        batch = translator.translate_batch([d.raw for d in population])
        assert len(batch) == len(population)
        assert batch.knowledge is not None
        assert batch.total_records == sum(len(d.raw) for d in population)
        assert batch.elapsed_seconds > 0
        assert batch.records_per_second > 0

    def test_by_device(self, mall3, population):
        translator = Translator(mall3)
        batch = translator.translate_batch([d.raw for d in population])
        target = population[2].device_id
        assert batch.by_device(target).device_id == target
        with pytest.raises(AnnotationError):
            batch.by_device("ghost")

    def test_batch_knowledge_reflects_corpus(self, mall3, population):
        translator = Translator(mall3)
        batch = translator.translate_batch([d.raw for d in population])
        assert batch.knowledge.sequences_seen == len(population)

    def test_batch_complements_dropout_gaps(self, mall3, population):
        degraded = []
        for device in population:
            seq, _ = inject_dropout(
                device.raw, gap_seconds=240.0, gap_count=1, seed=3
            )
            degraded.append(seq)
        batch = Translator(mall3).translate_batch(degraded)
        inferred_total = sum(r.semantics.inferred_count for r in batch)
        original_gaps = sum(
            1 for r in batch if r.complement and r.complement.gaps_found
        )
        # At least some dropout windows cross region boundaries and get filled.
        assert original_gaps >= 1
        assert inferred_total >= 0  # inference may decline, but must not crash

    def test_cleaning_config_propagates(self, mall3, simulated):
        # Ground truth is always in walkable space, so with an absurd speed
        # limit nothing is invalid; out-of-building fixes would still be.
        config = TranslatorConfig(cleaning=CleaningConfig(max_speed=1e9))
        result = Translator(mall3, config=config).translate(
            simulated.ground_truth
        )
        assert result.cleaning.report.invalid_count == 0
