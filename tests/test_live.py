"""The live streaming translation service.

The service's contract mirrors the engine's: *live* means windowed and
incremental, never approximate.  Replaying a finite stream — any window
size, any backend, tagged or router-dispatched feeds — must, after
``finalize()``, reproduce exactly what ``Engine.translate_batch`` returns
over the same windowed sequences, knowledge bit for bit; and multi-
building dispatch must route every sequence to the correct venue
translator while all venues share one worker pool.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core import Translator
from repro.engine import BACKENDS, Engine, EngineConfig
from repro.errors import ConfigError, DispatchError, ViewerError
from repro.live import (
    LiveConfig,
    LiveStats,
    LiveTranslationService,
    VenueDispatcher,
    VenueStats,
    merge_device_results,
    prefix_router,
)
from repro.positioning import (
    RecordStream,
    sequence_stream,
    windowed_records,
)
from repro.viewer import ViewerSession

from .conftest import make_two_shop_dsm, stationary_sequence, walk_sequence

ALL_BACKENDS = sorted(BACKENDS)


def shop_records(prefix: str = "", start: float = 0.0):
    """A few shop dwellers and hall walkers, as one time-sorted feed."""
    sequences = []
    for i in range(3):
        sequences.append(
            stationary_sequence(
                f"{prefix}dwell-{i}",
                at=(5.0 if i % 2 == 0 else 15.0, 15.0, 1),
                seed=i,
                start=start + 120.0 * i,
            )
        )
    for i in range(2):
        sequences.append(
            walk_sequence(f"{prefix}walk-{i}", start=start + 60.0 * i)
        )
    records = [r for s in sequences for r in s.records]
    return sorted(records, key=lambda r: (r.timestamp, r.device_id))


def reference_batches(records_by_venue, translators, window_seconds, **engine):
    """Per-venue one-shot batches over the same windowed sequence split."""
    references = {}
    for venue_id, records in records_by_venue.items():
        sequences = list(
            sequence_stream(RecordStream(iter(records)), window_seconds)
        )
        references[venue_id] = Engine(
            translators[venue_id], EngineConfig(**engine)
        ).translate_batch(sequences)
    return references


@pytest.fixture()
def two_venues():
    return {
        "east": Translator(make_two_shop_dsm()),
        "west": Translator(make_two_shop_dsm()),
    }


# ----------------------------------------------------------------------
# Dispatcher
# ----------------------------------------------------------------------
def test_dispatcher_single_venue_routes_everything(two_venues):
    dispatcher = VenueDispatcher({"east": two_venues["east"]})
    assert dispatcher.route(shop_records()[0]) == "east"


def test_dispatcher_prefix_routing(two_venues):
    dispatcher = VenueDispatcher(two_venues)
    east = shop_records("east:")[0]
    west = shop_records("west:")[0]
    assert dispatcher.route(east) == "east"
    assert dispatcher.route(west) == "west"
    unprefixed = shop_records()[0]
    with pytest.raises(DispatchError):
        dispatcher.route(unprefixed)
    unknown = replace(unprefixed, device_id="mars:rover")
    with pytest.raises(DispatchError):
        dispatcher.route(unknown)


def test_dispatcher_custom_router(two_venues):
    dispatcher = VenueDispatcher(
        two_venues,
        router=lambda record: "east" if record.timestamp < 100 else "west",
    )
    records = shop_records()
    split = dispatcher.split(records)
    assert list(split) == sorted(split)
    assert sum(len(v) for v in split.values()) == len(records)
    assert split["east"] == [r for r in records if r.timestamp < 100]
    assert split["west"] == [r for r in records if r.timestamp >= 100]


def test_dispatcher_requires_venues():
    with pytest.raises(DispatchError):
        VenueDispatcher({})
    dispatcher = VenueDispatcher({"east": Translator(make_two_shop_dsm())})
    with pytest.raises(DispatchError):
        dispatcher.translator("west")


def test_prefix_router_custom_separator():
    route = prefix_router("/")
    record = replace(shop_records()[0], device_id="mall/dev-1")
    assert route(record) == "mall"


# ----------------------------------------------------------------------
# Equivalence: live replay + finalize == one-shot batch
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ALL_BACKENDS)
@pytest.mark.parametrize("window_seconds", [40.0, 150.0, 10_000.0])
def test_live_matches_batch_any_window_any_backend(
    two_venues, backend, window_seconds
):
    """The acceptance invariant: any window size, any backend."""
    records = {"east": shop_records(), "west": shop_records(start=37.0)}
    service = LiveTranslationService(
        two_venues,
        EngineConfig(backend=backend, workers=2, chunk_size=2),
        LiveConfig(window_seconds=window_seconds),
    )
    with service:
        for venue_id, venue_records in records.items():
            service.run_stream(
                RecordStream(iter(venue_records)), venue_id=venue_id
            )
        finalized = service.finalize()
    references = reference_batches(
        records, two_venues, window_seconds, chunk_size=2
    )
    for venue_id, reference in references.items():
        assert finalized[venue_id].results == reference.results
        assert finalized[venue_id].knowledge == reference.knowledge


def test_async_serve_matches_sync_replay(two_venues):
    """The asyncio front-end (tagged feeds, bounded queue) produces the
    same finalized output as the synchronous driver."""
    records = {"east": shop_records(), "west": shop_records(start=11.0)}
    window_seconds = 60.0
    emitted = []
    service = LiveTranslationService(
        two_venues,
        EngineConfig(backend="threads", workers=2, chunk_size=2),
        LiveConfig(window_seconds=window_seconds, max_pending_windows=1),
    )
    with service:
        stats = service.serve(
            {v: RecordStream(iter(r)) for v, r in records.items()},
            on_window=emitted.append,
        )
        finalized = service.finalize()
    assert stats.windows == len(emitted) > 2
    assert stats.records == sum(len(r) for r in records.values())
    references = reference_batches(
        records, two_venues, window_seconds, chunk_size=2
    )
    for venue_id, reference in references.items():
        assert finalized[venue_id].results == reference.results
        assert finalized[venue_id].knowledge == reference.knowledge


def test_mixed_feed_routes_by_prefix(two_venues):
    """One untagged feed, records interleaved across venues: dispatch
    must deliver every sequence to the right venue translator."""
    east = shop_records("east:")
    west = shop_records("west:", start=13.0)
    mixed = sorted(east + west, key=lambda r: (r.timestamp, r.device_id))
    window_seconds = 75.0
    service = LiveTranslationService(
        two_venues,
        EngineConfig(chunk_size=3),
        LiveConfig(window_seconds=window_seconds),
    )
    with service:
        service.run_stream(RecordStream(iter(mixed)))
        finalized = service.finalize()
    for venue_id, batch in finalized.items():
        assert len(batch) > 0
        assert all(
            result.device_id.startswith(f"{venue_id}:") for result in batch
        )
    # Equivalence holds per venue over the *mixed-feed* windowing: cut the
    # shared windows first, then split each window per venue.
    per_venue: dict[str, list] = {"east": [], "west": []}
    from repro.positioning import PositioningSequence

    for window in windowed_records(RecordStream(iter(mixed)), window_seconds):
        split: dict[str, list] = {}
        for record in window:
            split.setdefault(record.device_id.split(":")[0], []).append(record)
        for venue_id in sorted(split):
            per_venue[venue_id].extend(
                PositioningSequence.group_records(split[venue_id])
            )
    for venue_id, sequences in per_venue.items():
        reference = Engine(
            two_venues[venue_id], EngineConfig(chunk_size=3)
        ).translate_batch(sequences)
        assert finalized[venue_id].results == reference.results
        assert finalized[venue_id].knowledge == reference.knowledge


def test_live_on_simulated_mall(mall3, population):
    """The acceptance benchmark venue: simulated mall crowd replayed
    through the live service reproduces the one-shot batch."""
    translator = Translator(mall3)
    records = sorted(
        (r for device in population for r in device.raw),
        key=lambda r: (r.timestamp, r.device_id),
    )
    window_seconds = 3600.0
    service = LiveTranslationService(
        {"mall": translator},
        EngineConfig(backend="threads", workers=2, chunk_size=4),
        LiveConfig(window_seconds=window_seconds),
    )
    with service:
        service.run_stream(RecordStream(iter(records)), venue_id="mall")
        finalized = service.finalize()
    sequences = list(
        sequence_stream(RecordStream(iter(records)), window_seconds)
    )
    reference = Engine(translator, EngineConfig(chunk_size=4)).translate_batch(
        sequences
    )
    assert finalized["mall"].results == reference.results
    assert finalized["mall"].knowledge == reference.knowledge


# ----------------------------------------------------------------------
# Record-layout differential: live path, objects vs columnar
# ----------------------------------------------------------------------
def fuzz_records(seed: int, devices: int = 4, per_device: int = 40):
    """A reproducible random feed: dwell bursts, walks, teleports, floor
    noise and wall-hugging fixes, interleaved into one time-sorted list."""
    import random

    from repro.geometry import Point
    from repro.positioning import RawPositioningRecord

    rng = random.Random(seed)
    edges = [0.0, 8.0, 10.0, 16.0, 20.0, 24.0, 30.0]
    records = []
    for d in range(devices):
        t = rng.uniform(0.0, 60.0)
        x, y = rng.uniform(0.0, 30.0), rng.uniform(0.0, 20.0)
        for _ in range(per_device):
            t += rng.choice([1.0, 5.0, 5.0, 30.0, 130.0])
            move = rng.random()
            if move < 0.5:  # dwell jitter
                x += rng.uniform(-0.4, 0.4)
                y += rng.uniform(-0.4, 0.4)
            elif move < 0.8:  # walk step
                x += rng.uniform(-3.0, 3.0)
                y += rng.uniform(-3.0, 3.0)
            elif move < 0.9:  # snap onto a wall / grid-cell line
                x, y = rng.choice(edges), rng.choice(edges)
            else:  # teleport (speed-infeasible outlier)
                x, y = rng.uniform(-2.0, 32.0), rng.uniform(-2.0, 22.0)
            floor = 1 if rng.random() < 0.9 else 2
            records.append(
                RawPositioningRecord(t, f"fuzz-{d}", Point(x, y, floor))
            )
    return sorted(records, key=lambda r: (r.timestamp, r.device_id))


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_live_layouts_finalize_identically(seed):
    """Differential fuzz: the same random feed replayed through the live
    service in both record layouts finalizes to identical results and
    knowledge — the streaming counterpart of the engine-matrix proof."""
    records = fuzz_records(seed)
    finalized = {}
    for layout in ("objects", "columnar"):
        service = LiveTranslationService(
            {"east": Translator(make_two_shop_dsm())},
            EngineConfig(backend="threads", workers=2, chunk_size=2,
                         record_layout=layout),
            LiveConfig(window_seconds=120.0),
        )
        with service:
            service.run_stream(
                RecordStream(iter(records)), venue_id="east"
            )
            finalized[layout] = service.finalize()["east"]
    assert finalized["objects"].results == finalized["columnar"].results
    assert finalized["objects"].knowledge == finalized["columnar"].knowledge
    assert len(finalized["objects"].results) > 0


# ----------------------------------------------------------------------
# Incremental fold semantics
# ----------------------------------------------------------------------
def test_knowledge_folds_monotonically(two_venues):
    service = LiveTranslationService(
        {"east": two_venues["east"]}, EngineConfig(), LiveConfig()
    )
    seen = []
    with service:
        for window in windowed_records(
            RecordStream(iter(shop_records())), 60.0
        ):
            service.process_window(window, venue_id="east")
            seen.append(service.knowledge("east").sequences_seen)
    assert seen == sorted(seen)
    assert seen[-1] > seen[0]
    assert service.stats.venues["east"].knowledge_sequences == seen[-1]


def test_per_window_results_are_live_view(two_venues):
    """Per-window emissions complement against knowledge-as-of-window:
    the window batches alias the venue's evolving knowledge object."""
    service = LiveTranslationService(
        {"east": two_venues["east"]}, EngineConfig(), LiveConfig()
    )
    with service:
        windows = [
            service.process_window(window, venue_id="east")
            for window in windowed_records(
                RecordStream(iter(shop_records())), 60.0
            )
        ]
    assert len(windows) > 1
    for window in windows:
        assert window.venues["east"].knowledge is service.knowledge("east")
        assert window.sequences == len(window.venues["east"])
        assert window.semantics == window.venues["east"].total_semantics


def test_stats_accumulate(two_venues):
    records = shop_records()
    service = LiveTranslationService(
        {"east": two_venues["east"]},
        EngineConfig(),
        LiveConfig(window_seconds=60.0),
    )
    with service:
        stats = service.run_stream(
            RecordStream(iter(records)), venue_id="east"
        )
    assert stats.records == len(records)
    assert stats.windows == stats.venues["east"].windows > 1
    assert stats.sequences == stats.venues["east"].sequences
    assert stats.semantics == stats.venues["east"].semantics > 0
    assert stats.elapsed_seconds > 0
    assert stats.windows_per_second > 0
    assert stats.records_per_second > 0
    assert "east" in stats.format_table()


def test_empty_window_is_a_noop(two_venues):
    service = LiveTranslationService(
        {"east": two_venues["east"]}, EngineConfig(), LiveConfig()
    )
    with service:
        window = service.process_window([], venue_id="east")
    assert window.venues == {}
    assert window.records == 0
    assert service.stats.windows == 1
    assert service.stats.records == 0


def test_unbounded_mode_drops_results_but_keeps_knowledge(two_venues):
    service = LiveTranslationService(
        {"east": two_venues["east"]},
        EngineConfig(),
        LiveConfig(window_seconds=60.0, retain_results=False),
    )
    with service:
        service.run_stream(RecordStream(iter(shop_records())), venue_id="east")
        assert service.results("east") == []
        assert service.knowledge("east").sequences_seen > 0
        with pytest.raises(ConfigError):
            service.finalize()


def test_serve_failing_feed_stops_siblings(two_venues):
    """A feed whose iterator dies mid-stream surfaces its error without
    deadlocking the other feed's producer against the bounded queue."""

    class Boom(RuntimeError):
        pass

    def broken():
        yield from shop_records()[:20]
        raise Boom("feed died")

    service = LiveTranslationService(
        two_venues,
        EngineConfig(),
        LiveConfig(window_seconds=30.0, max_pending_windows=1),
    )
    with service:
        with pytest.raises(Boom):
            service.serve(
                {
                    "east": RecordStream(broken()),
                    "west": RecordStream(iter(shop_records(start=5.0))),
                }
            )
    # Whatever was translated before the failure is still accounted for.
    assert service.stats.windows >= 1


def test_serve_unroutable_record_fails_loudly(two_venues):
    """A consumer failure surfaces instead of deadlocking the producers
    against a full ingestion queue."""
    service = LiveTranslationService(
        two_venues,
        EngineConfig(),
        LiveConfig(window_seconds=60.0, max_pending_windows=1),
    )
    with service:
        with pytest.raises(DispatchError):
            service.serve(RecordStream(iter(shop_records())))


def test_producer_failure_survives_failing_drain(two_venues):
    """When a feed dies *and* the post-failure drain of already-queued
    windows also fails, the producer's failure is the one raised — the
    drain error chains as its context instead of replacing it.

    Regression: serve_async used to re-raise whatever the drain threw,
    masking the original feed failure behind a secondary symptom.
    """
    import threading

    release = threading.Event()

    class ExplodingFeed(RecordStream):
        """Serves pre-cut windows, then dies; the death releases the
        consumer, so the poisoned window is still queued when the
        producer failure is handled — the drain path under test."""

        def __init__(self, windows):
            super().__init__(iter(()))
            self._windows = list(windows)

        def take_window(self, window_seconds, max_records=None):
            if self._windows:
                return self._windows.pop(0)
            release.set()
            raise RuntimeError("feed exploded")

    class GatedService(LiveTranslationService):
        def process_window(self, records, venue_id=None):
            assert release.wait(timeout=30)
            return super().process_window(records, venue_id)

    service = GatedService(
        two_venues,
        EngineConfig(chunk_size=2),
        LiveConfig(window_seconds=60.0, max_pending_windows=4),
    )
    good_window = shop_records("east:")[:10]
    unroutable_window = shop_records()[:5]
    with service:
        with pytest.raises(RuntimeError, match="feed exploded") as excinfo:
            service.serve(ExplodingFeed([good_window, unroutable_window]))
    assert isinstance(excinfo.value.__context__, DispatchError)
    # The good window drained and is accounted for.
    assert service.stats.windows == 1


def test_live_config_validation():
    with pytest.raises(ConfigError):
        LiveConfig(window_seconds=0.0)
    with pytest.raises(ConfigError):
        LiveConfig(max_window_records=0)
    with pytest.raises(ConfigError):
        LiveConfig(max_pending_windows=0)
    with pytest.raises(ConfigError):
        LiveConfig(snapshot_interval=0)


def test_single_translator_shorthand():
    translator = Translator(make_two_shop_dsm())
    service = LiveTranslationService(translator)
    with service:
        service.run_stream(RecordStream(iter(shop_records())))
        finalized = service.finalize()
    assert set(finalized) == {"default"}
    assert len(finalized["default"]) > 0


# ----------------------------------------------------------------------
# Viewer over accumulating live results
# ----------------------------------------------------------------------
def test_viewer_session_from_live_merges_windows(two_venues):
    service = LiveTranslationService(
        {"east": two_venues["east"]},
        EngineConfig(),
        LiveConfig(window_seconds=60.0),
    )
    with service:
        service.run_stream(RecordStream(iter(shop_records())), venue_id="east")
        results = service.results("east")
        session = service.viewer_session("east", "dwell-0")
    windows = [r for r in results if r.device_id == "dwell-0"]
    assert len(windows) > 1
    merged = session.result
    assert merged.device_id == "dwell-0"
    assert len(merged.raw) == sum(len(w.raw) for w in windows)
    assert len(merged.semantics) == sum(len(w.semantics) for w in windows)
    assert merged.cleaning.report.total_records == len(merged.raw)
    # The merged session renders and animates like any other.
    assert len(session.animate(step_seconds=30.0)) > 0
    assert session.render() is not None


def test_merge_device_results_offsets_report_indexes(two_venues):
    service = LiveTranslationService(
        {"east": two_venues["east"]},
        EngineConfig(),
        LiveConfig(window_seconds=60.0),
    )
    with service:
        service.run_stream(RecordStream(iter(shop_records())), venue_id="east")
        results = service.results("east")
    merged = merge_device_results(results, "walk-0")
    windows = [r for r in results if r.device_id == "walk-0"]
    assert merged.cleaning.report.total_records == sum(
        w.cleaning.report.total_records for w in windows
    )
    assert all(
        0 <= i < len(merged.raw)
        for i in merged.cleaning.report.invalid_indexes
    )
    assert len(merged.annotation.snippets) == sum(
        len(w.annotation.snippets) for w in windows
    )
    with pytest.raises(ViewerError):
        merge_device_results(results, "no-such-device")


def test_from_live_single_window_passthrough(two_venues):
    translator = two_venues["east"]
    batch = translator.translate_batch([stationary_sequence("solo")])
    session = ViewerSession.from_live(
        translator.model, batch.results, "solo"
    )
    assert session.result is batch.results[0]


# ----------------------------------------------------------------------
# LiveStats rendering
# ----------------------------------------------------------------------
class TestLiveStatsFormatTable:
    def test_empty_stats_render_with_zero_rates(self):
        stats = LiveStats()
        table = stats.format_table()
        assert "windows=0" in table
        assert "records=0" in table
        assert "0.00 windows/s" in table
        assert stats.windows_per_second == 0.0
        assert stats.records_per_second == 0.0

    def test_rates_derive_from_elapsed(self):
        stats = LiveStats(windows=3, records=1200, elapsed_seconds=2.0)
        assert stats.windows_per_second == 1.5
        assert stats.records_per_second == 600.0
        assert "1.50 windows/s" in stats.format_table()

    def test_venue_rows_sorted_with_lifecycle_columns(self):
        stats = LiveStats(
            windows=4,
            records=900,
            sequences=12,
            semantics=30,
            translate_seconds=0.8,
            elapsed_seconds=3.0,
            venues={
                "zoo": VenueStats(
                    "zoo", windows=1, records=100, sequences=2, semantics=5,
                    knowledge_sequences=2, translate_seconds=0.1,
                    retained_epochs=1,
                ),
                "arena": VenueStats(
                    "arena", windows=3, records=800, sequences=10,
                    semantics=25, knowledge_sequences=7.5,
                    translate_seconds=0.7, retained_epochs=3,
                ),
            },
        )
        table = stats.format_table()
        lines = table.splitlines()
        assert len(lines) == 3  # summary + one row per venue
        # Venues render in sorted order regardless of dict order.
        assert lines[1].strip().startswith("arena")
        assert lines[2].strip().startswith("zoo")
        # Lifecycle columns: decayed float weights render compactly,
        # retained epochs are visible per venue.
        assert "knowledge over 7.5 sequences" in lines[1]
        assert "(3 epochs)" in lines[1]
        assert "0.70s translate" in lines[1]
        # No adaptive target -> no window<= suffix.
        assert "window<=" not in table

    def test_adaptive_target_suffix_renders_when_set(self):
        stats = LiveStats(
            windows=1,
            records=50,
            elapsed_seconds=1.0,
            venues={
                "mall": VenueStats(
                    "mall", windows=1, records=50, sequences=1,
                    window_records_target=640,
                )
            },
        )
        assert "window<=640 records" in stats.format_table()
