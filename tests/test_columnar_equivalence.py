"""The columnar layout's headline invariant: bit-for-bit equivalence.

Phase one can run over per-record objects or over columnar record
batches (``EngineConfig.record_layout``); the contract is that the two
layouts are *indistinguishable by output* — every cleaning result, every
annotation, every knowledge shard identical, float bits included.  This
suite proves it differentially:

- property tests pin the ``RecordBatch`` boundary conversion (exact
  round-trips, empty windows, single-record devices, quality columns);
- hypothesis point-location tests run the flat containment kernels
  against the shape objects they replicate, with boundary-heavy inputs;
- a hypothesis feed differential drives random (dirty, floor-hopping,
  boundary-hugging) feeds through both phase-one implementations;
- an engine matrix replays deterministic feeds over all three buildings,
  every execution backend and both knowledge-build modes;
- an incremental matrix proves layout equivalence under every knowledge
  retention policy family via ``translate_increment``.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.buildings import MallConfig, build_mall
from repro.columnar import (
    NUMPY_AVAILABLE,
    RecordBatch,
    run_phase_one_chunk_columnar,
    selftest,
)
from repro.columnar import locate as columnar_locate
from repro.columnar import pipeline as columnar_pipeline
from repro.core import Translator
from repro.core.translator import run_phase_one_chunk
from repro.engine import BACKENDS, RECORD_LAYOUTS, Engine, EngineConfig
from repro.errors import ConfigError
from repro.geometry import Point
from repro.positioning import PositioningSequence, RawPositioningRecord
from repro.simulation import MobilitySimulator

from .conftest import make_two_shop_dsm, stationary_sequence, walk_sequence

ALL_BACKENDS = sorted(BACKENDS)

#: Retention specs covering every policy family the store parses.
RETENTIONS = ("unbounded", "window:2", "window:90s", "decay:4")


def bits(value: float) -> bytes:
    """The IEEE-754 bytes of a float — equality up to the sign of zero."""
    return struct.pack("<d", value)


# ----------------------------------------------------------------------
# Strategies: boundary-heavy coordinates on the two-shop venue
# ----------------------------------------------------------------------
# Wall lines of the two-shop DSM (x: 0/10/20/30, y: 0/10/20), grid-cell
# lines of the 8.0-cell index (8/16/24), and near-boundary offsets around
# the 1e-9 containment tolerance.
_EDGES = [0.0, 8.0, 10.0, 16.0, 20.0, 24.0, 30.0]
_COORD_SPECIALS = (
    [-0.0]
    + _EDGES
    + [e + d for e in (10.0, 20.0) for d in (-1e-9, 1e-9, -5e-10, 5e-10)]
    + [9.7, 15.0, 29.999999999]
)

coordinate = st.one_of(
    st.sampled_from(_COORD_SPECIALS),
    st.floats(min_value=-2.0, max_value=32.0, allow_nan=False, width=64),
)

floor_value = st.sampled_from([1, 1, 1, 2])  # mostly valid, sometimes wrong

time_gap = st.one_of(
    st.sampled_from([1.0, 5.0, 30.0, 121.0]),
    st.floats(min_value=0.25, max_value=150.0, allow_nan=False),
)


@st.composite
def device_feed(draw, device_id: str) -> PositioningSequence:
    """One device's sequence: dwell-ish runs with jumps and floor noise."""
    n = draw(st.integers(min_value=1, max_value=24))
    points = draw(
        st.lists(
            st.tuples(coordinate, coordinate, floor_value),
            min_size=n,
            max_size=n,
        )
    )
    gaps = draw(st.lists(time_gap, min_size=n, max_size=n))
    t = draw(st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    records = []
    for (x, y, floor), gap in zip(points, gaps):
        t += gap
        records.append(
            RawPositioningRecord(t, device_id, Point(x, y, floor))
        )
    return PositioningSequence(device_id, records)


@st.composite
def feeds(draw) -> list[PositioningSequence]:
    count = draw(st.integers(min_value=1, max_value=4))
    return [draw(device_feed(f"dev-{i}")) for i in range(count)]


# ----------------------------------------------------------------------
# Satellite 1: RecordBatch round-trips exactly
# ----------------------------------------------------------------------
record_strategy = st.builds(
    RawPositioningRecord,
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.sampled_from(["dev-a", "dev-b", "dev-c"]),
    st.builds(
        Point,
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        st.integers(min_value=-(2**40), max_value=2**40),
    ),
)


class TestRecordBatchRoundTrip:
    @given(records=st.lists(record_strategy, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_from_records_to_records_is_exact(self, records):
        """Order preserved, every float bit-identical, floors exact."""
        back = RecordBatch.from_records(records).to_records()
        assert len(back) == len(records)
        for original, restored in zip(records, back):
            assert restored.device_id == original.device_id
            assert bits(restored.timestamp) == bits(original.timestamp)
            assert bits(restored.location.x) == bits(original.location.x)
            assert bits(restored.location.y) == bits(original.location.y)
            assert restored.location.floor == original.location.floor
            assert restored == original

    def test_empty_window_round_trips(self):
        batch = RecordBatch.from_records([])
        assert len(batch) == 0
        assert batch.to_records() == []
        assert batch == RecordBatch.from_records([])

    def test_single_record_device(self):
        record = RawPositioningRecord(3.5, "solo", Point(-0.0, 1e-300, 7))
        batch = RecordBatch.from_records([record])
        (restored,) = batch.to_records()
        assert restored == record
        assert bits(restored.location.x) == bits(-0.0)  # signed zero kept

    @given(
        records=st.lists(record_strategy, min_size=1, max_size=20),
        data=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_quality_column_round_trips(self, records, data):
        qualities = data.draw(
            st.lists(
                st.floats(allow_nan=False, width=64),
                min_size=len(records),
                max_size=len(records),
            )
        )
        batch = RecordBatch.from_records(records, qualities=qualities)
        assert [bits(q) for q in batch.qualities] == [
            bits(q) for q in qualities
        ]
        # Equality is bitwise over every column, quality included.
        again = RecordBatch.from_records(records, qualities=qualities)
        assert batch == again
        assert batch != RecordBatch.from_records(records)

    def test_from_sequences_spans_are_half_open(self):
        walk = walk_sequence("w")
        dwell = stationary_sequence("d", count=5)
        solo = walk_sequence("s", points=[(1.0, 5.0, 1)])
        batch, spans = RecordBatch.from_sequences([walk, dwell, solo])
        assert spans == [(0, 10), (10, 15), (15, 16)]
        assert len(batch) == 16
        back = batch.to_records()
        assert back[:10] == list(walk.records)
        assert back[10:15] == list(dwell.records)
        assert back[15:] == list(solo.records)

    def test_misaligned_columns_rejected(self):
        from array import array

        with pytest.raises(ValueError):
            RecordBatch(
                array("d", [1.0]), array("d"), array("d"), array("q"), []
            )
        with pytest.raises(ValueError):
            RecordBatch.from_records(
                [RawPositioningRecord(0.0, "d", Point(0, 0, 1))],
                qualities=[1.0, 2.0],
            )

    @pytest.mark.skipif(not NUMPY_AVAILABLE, reason="needs numpy")
    def test_column_views_are_zero_copy(self):
        import numpy as np

        record = RawPositioningRecord(1.5, "d", Point(2.5, -3.5, 4))
        batch = RecordBatch.from_records([record])
        assert batch.column("xs").dtype == np.float64
        assert batch.column("floors").dtype == np.int64
        assert batch.column("xs")[0] == 2.5
        assert batch.column("floors")[0] == 4
        assert batch.column("device_ids") == ["d"]
        assert batch.column("qualities") is None


# ----------------------------------------------------------------------
# Point-location kernels vs the shape objects they replicate
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def shop_locator():
    model = make_two_shop_dsm()
    return columnar_locate.PointLocator(model)


class TestLocationKernels:
    @given(x=coordinate, y=coordinate, floor=st.sampled_from([1, 2]))
    @settings(max_examples=300, deadline=None)
    def test_shape_containment_matches_objects(self, shop_locator, x, y, floor):
        point = Point(x, y, floor)
        model = shop_locator.model
        for entity in model._entities.values():
            if not entity.is_partition:
                continue
            entry = shop_locator.entity_entry(entity.entity_id)
            assert columnar_locate.kernel_shape_contains(
                entry, point
            ) == columnar_locate.reference_shape_contains(entity.shape, point)

    @given(x=coordinate, y=coordinate, floor=st.sampled_from([1, 2]))
    @settings(max_examples=300, deadline=None)
    def test_partition_and_region_match_model(self, shop_locator, x, y, floor):
        point = Point(x, y, floor)
        model = shop_locator.model
        session = shop_locator.session()
        # Same *objects*, not merely equal ones: straight-move checks
        # compare partitions by identity.
        assert session.partition_entity(
            x, y, floor
        ) is columnar_locate.reference_partition_at(model, point)
        assert session.primary_region(
            x, y, floor
        ) is columnar_locate.reference_region_at(model, point)

    def test_primed_session_agrees_with_scalar_lookups(self, shop_locator):
        points = [
            (x, y, 1)
            for x in _COORD_SPECIALS
            for y in (0.0, 5.0, 10.0, 10.0 + 1e-9, 15.0, 20.0)
        ]
        records = [
            RawPositioningRecord(float(i), "probe", Point(x, y, f))
            for i, (x, y, f) in enumerate(points)
        ]
        batch = RecordBatch.from_records(records)
        primed = shop_locator.session()
        primed.prime(batch)
        cold = shop_locator.session()
        for x, y, f in points:
            assert primed.partition_entity(x, y, f) is cold.partition_entity(
                x, y, f
            )
            assert primed.primary_region(x, y, f) is cold.primary_region(
                x, y, f
            )

    def test_scalar_prime_path_matches_numpy_prime(
        self, shop_locator, monkeypatch
    ):
        """TRIPS_COLUMNAR_NUMPY=0 (scalar prime) locates identically."""
        records = [
            RawPositioningRecord(float(i), "probe", Point(x, y, 1))
            for i, x in enumerate(_COORD_SPECIALS)
            for y in (5.0, 10.0, 15.0)
        ]
        batch = RecordBatch.from_records(records)
        vectorized = shop_locator.session()
        vectorized.prime(batch)
        monkeypatch.setattr(columnar_locate, "_NUMPY_ENABLED", False)
        scalar = shop_locator.session()
        scalar.prime(batch)
        assert scalar._partitions == vectorized._partitions
        assert scalar._regions == vectorized._regions

    def test_locator_refreshes_after_model_mutation(self):
        from repro.dsm import EntityKind, IndoorEntity
        from repro.geometry import Polygon

        model = make_two_shop_dsm()
        locator = columnar_locate.PointLocator(model)
        assert locator.session().partition_entity(5.0, 25.0, 1) is None
        model.add_entity(
            IndoorEntity(
                "annex", EntityKind.ROOM, Polygon.rectangle(0, 20, 10, 30)
            )
        )
        found = locator.session().partition_entity(5.0, 25.0, 1)
        assert found is model.entity("annex")


# ----------------------------------------------------------------------
# Hypothesis feed differential: phase one, objects vs columnar
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def shop_translator():
    return Translator(make_two_shop_dsm())


def assert_chunks_equal(objects, columnar):
    assert len(objects.pairs) == len(columnar.pairs)
    for index, (obj, col) in enumerate(zip(objects.pairs, columnar.pairs)):
        assert obj[0] == col[0], f"cleaning differs for sequence {index}"
        assert obj[1] == col[1], f"annotation differs for sequence {index}"
    assert objects.partial == columnar.partial


class TestPhaseOneDifferential:
    @given(sequences=feeds())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_random_feeds_translate_identically(
        self, shop_translator, sequences
    ):
        objects = run_phase_one_chunk(
            shop_translator, sequences, emit_partial=True
        )
        columnar = run_phase_one_chunk_columnar(
            shop_translator, sequences, emit_partial=True
        )
        assert_chunks_equal(objects, columnar)

    def test_selftest_passes_and_reports(self):
        before = columnar_pipeline.CHUNKS_RUN
        summary = selftest()
        assert summary["pairs_equal"] and summary["partial_equal"]
        assert summary["chunks_run"] > before
        if columnar_locate._NUMPY_ENABLED:
            assert summary["numpy_prime_ran"]

    def test_cleaning_disabled_still_equivalent(self, two_shop):
        from repro.core.translator import TranslatorConfig

        translator = Translator(
            two_shop, config=TranslatorConfig(enable_cleaning=False)
        )
        sequences = [
            walk_sequence("w"),
            stationary_sequence("d", count=12, seed=3),
        ]
        assert_chunks_equal(
            run_phase_one_chunk(translator, sequences, emit_partial=True),
            run_phase_one_chunk_columnar(
                translator, sequences, emit_partial=True
            ),
        )


# ----------------------------------------------------------------------
# Engine matrix: buildings x backends x knowledge builds
# ----------------------------------------------------------------------
def shop_feed():
    sequences = [
        stationary_sequence(
            f"dwell-{i}",
            at=(5.0 if i % 2 == 0 else 15.0, 15.0, 1),
            seed=i,
            start=120.0 * i,
        )
        for i in range(3)
    ]
    sequences += [walk_sequence(f"walk-{i}", start=60.0 * i) for i in range(2)]
    return sequences


@pytest.fixture(scope="module")
def building_feeds():
    """(translator, sequences, objects-reference) per building."""
    mall2 = build_mall(MallConfig(floors=2))
    mall3 = build_mall(MallConfig(floors=3))
    cases = {}
    for name, model, sequences in (
        ("two_shop", make_two_shop_dsm(), shop_feed()),
        (
            "mall",
            mall2,
            [
                d.raw
                for d in MobilitySimulator(mall2, seed=5).simulate_population(
                    count=3, seed=5
                )
            ],
        ),
        (
            "mall3",
            mall3,
            [
                d.raw
                for d in MobilitySimulator(mall3, seed=9).simulate_population(
                    count=3, seed=9
                )
            ],
        ),
    ):
        translator = Translator(model)
        reference = Engine(
            translator, EngineConfig(chunk_size=2, record_layout="objects")
        ).translate_batch(sequences)
        cases[name] = (translator, sequences, reference)
    return cases


@pytest.mark.parametrize("building", ["two_shop", "mall", "mall3"])
@pytest.mark.parametrize("backend", ALL_BACKENDS)
@pytest.mark.parametrize("knowledge_build", ["rebuild", "sharded"])
def test_engine_columnar_matches_objects(
    building_feeds, building, backend, knowledge_build
):
    """The acceptance matrix: columnar == objects, results and knowledge,
    for every building x backend x knowledge-build cell."""
    translator, sequences, reference = building_feeds[building]
    chunks_before = columnar_pipeline.CHUNKS_RUN
    engine = Engine(
        translator,
        EngineConfig(
            backend=backend,
            workers=2,
            chunk_size=2,
            knowledge_build=knowledge_build,
            record_layout="columnar",
        ),
    )
    batch = engine.translate_batch(sequences)
    assert batch.results == reference.results
    assert batch.knowledge == reference.knowledge
    if backend != "processes":
        # In-process backends must have exercised the columnar pipeline
        # (worker processes advance their own counters).
        assert columnar_pipeline.CHUNKS_RUN > chunks_before


# ----------------------------------------------------------------------
# Incremental path: every retention policy family
# ----------------------------------------------------------------------
@pytest.mark.parametrize("retention", RETENTIONS)
def test_incremental_retention_matches_across_layouts(retention):
    """Windowed ``translate_increment`` through a retention-managed store
    evolves identically in both layouts — per-window results, knowledge
    bits and epoch lifecycle."""
    translator = Translator(make_two_shop_dsm())
    sequences = shop_feed()
    windows = [sequences[:2], sequences[2:4], sequences[4:]]

    def run(layout):
        engine = Engine(
            translator, EngineConfig(chunk_size=2, record_layout=layout)
        )
        store = engine.make_store(retention)
        states = []
        for window in windows:
            result, _ = engine.translate_increment(window, store=store)
            store.roll()
            states.append(
                (
                    result.results,
                    store.to_partial(),
                    store.retained_epochs,
                    store.epochs_retired,
                )
            )
        return states

    for obj_state, col_state in zip(run("objects"), run("columnar")):
        assert obj_state == col_state


def test_increment_without_store_matches(two_shop):
    translator = Translator(two_shop)
    windows = [shop_feed()[:3], shop_feed()[3:]]
    knowledge = {}
    results = {}
    for layout in RECORD_LAYOUTS:
        engine = Engine(
            translator, EngineConfig(chunk_size=2, record_layout=layout)
        )
        folded = None
        emitted = []
        for window in windows:
            result, folded = engine.translate_increment(window, folded)
            emitted.append(result.results)
        knowledge[layout] = folded
        results[layout] = emitted
    assert results["objects"] == results["columnar"]
    assert knowledge["objects"] == knowledge["columnar"]


# ----------------------------------------------------------------------
# Configuration plumbing
# ----------------------------------------------------------------------
class TestRecordLayoutConfig:
    def test_known_layouts(self, monkeypatch):
        # The CI columnar leg exports TRIPS_RECORD_LAYOUT for the whole
        # suite; clear it so this test pins the built-in default.
        monkeypatch.delenv("TRIPS_RECORD_LAYOUT", raising=False)
        assert RECORD_LAYOUTS == ("objects", "columnar")
        assert EngineConfig().record_layout == "objects"
        assert EngineConfig(record_layout="columnar").record_layout == (
            "columnar"
        )

    def test_unknown_layout_rejected(self):
        with pytest.raises(ConfigError, match="record layout"):
            EngineConfig(record_layout="rowwise")

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv("TRIPS_RECORD_LAYOUT", "columnar")
        assert EngineConfig().record_layout == "columnar"
        # An explicit value still wins over the environment.
        assert EngineConfig(record_layout="objects").record_layout == (
            "objects"
        )
        monkeypatch.setenv("TRIPS_RECORD_LAYOUT", "bogus")
        with pytest.raises(ConfigError):
            EngineConfig()

    def test_objects_layout_does_not_run_columnar_chunks(self, two_shop):
        translator = Translator(two_shop)
        before = columnar_pipeline.CHUNKS_RUN
        Engine(
            translator, EngineConfig(record_layout="objects")
        ).translate_batch([walk_sequence("w")])
        assert columnar_pipeline.CHUNKS_RUN == before
