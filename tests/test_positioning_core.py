"""Unit tests for records, sequences, IO sources and streams."""

import pytest

from repro.errors import DataSourceError
from repro.geometry import Point
from repro.positioning import (
    CsvFileSource,
    JsonlFileSource,
    MemorySource,
    PositioningSequence,
    RawPositioningRecord,
    RecordStream,
    TableSource,
    windowed_sequences,
    write_csv,
    write_jsonl,
)
from repro.timeutil import TimeRange

from .conftest import walk_sequence


def rec(t, device="dev", x=0.0, y=0.0, floor=1):
    return RawPositioningRecord(t, device, Point(x, y, floor))


class TestRecord:
    def test_paper_notation(self):
        record = rec(13 * 3600 + 125, device="oi", x=5.1, y=12.7, floor=3)
        assert str(record) == "oi, (5.1, 12.7, 3F), 1:02:05pm"

    def test_requires_device(self):
        with pytest.raises(DataSourceError):
            rec(0.0, device="")

    def test_sort_by_time_then_device(self):
        records = [rec(5, "b"), rec(1, "z"), rec(5, "a")]
        ordered = sorted(records)
        assert [(r.timestamp, r.device_id) for r in ordered] == [
            (1, "z"), (5, "a"), (5, "b"),
        ]

    def test_moved_and_refloored_are_copies(self):
        original = rec(0.0, x=1, y=1, floor=1)
        moved = original.moved(Point(2, 2, 1))
        refloored = original.refloored(3)
        assert original.location == Point(1, 1, 1)
        assert moved.location == Point(2, 2, 1)
        assert refloored.floor == 3 and refloored.location.xy == (1, 1)


class TestSequence:
    def test_sorts_records(self):
        seq = PositioningSequence("dev", [rec(5), rec(1), rec(3)])
        assert seq.timestamps == [1, 3, 5]

    def test_empty_rejected(self):
        with pytest.raises(DataSourceError):
            PositioningSequence("dev", [])

    def test_foreign_device_rejected(self):
        with pytest.raises(DataSourceError):
            PositioningSequence("dev", [rec(0, device="other")])

    def test_group_records(self):
        records = [rec(0, "b"), rec(1, "a"), rec(2, "b")]
        groups = PositioningSequence.group_records(records)
        assert [g.device_id for g in groups] == ["a", "b"]
        assert len(groups[1]) == 2

    def test_duration_and_frequency(self):
        seq = walk_sequence(points=[(i, 0, 1) for i in range(7)], interval=10)
        assert seq.duration == 60.0
        assert seq.frequency == pytest.approx(7.0)

    def test_mean_interval(self):
        seq = walk_sequence(points=[(i, 0, 1) for i in range(5)], interval=5)
        assert seq.mean_interval == 5.0

    def test_floors_visited(self):
        seq = walk_sequence(points=[(0, 0, 1), (1, 0, 3), (2, 0, 1)])
        assert seq.floors_visited == [1, 3]

    def test_slice_time(self):
        seq = walk_sequence(points=[(i, 0, 1) for i in range(10)], interval=5)
        window = TimeRange(10.0, 20.0)
        sliced = seq.slice_time(window)
        assert sliced is not None and len(sliced) == 3

    def test_slice_time_empty_is_none(self):
        seq = walk_sequence()
        assert seq.slice_time(TimeRange(1e6, 2e6)) is None

    def test_slice_index(self):
        seq = walk_sequence()
        assert len(seq.slice_index(2, 5)) == 3
        with pytest.raises(DataSourceError):
            seq.slice_index(5, 5)

    def test_split_on_gaps(self):
        records = [rec(0), rec(5), rec(1000), rec(1005)]
        seq = PositioningSequence("dev", records)
        pieces = seq.split_on_gaps(60.0)
        assert [len(p) for p in pieces] == [2, 2]

    def test_split_on_gaps_no_gap(self):
        seq = walk_sequence()
        assert len(seq.split_on_gaps(60.0)) == 1

    def test_split_bad_gap(self):
        with pytest.raises(DataSourceError):
            walk_sequence().split_on_gaps(0)

    def test_gaps_longer_than(self):
        records = [rec(0), rec(500), rec(505)]
        seq = PositioningSequence("dev", records)
        gaps = seq.gaps_longer_than(100)
        assert gaps == [TimeRange(0, 500)]

    def test_bounds(self):
        seq = walk_sequence(points=[(0, 0, 1), (10, 5, 1)])
        assert seq.bounds.width == 10 and seq.bounds.height == 5


class TestFileSources:
    def test_csv_roundtrip(self, tmp_path):
        seq = walk_sequence(points=[(1.5, 2.5, 2), (3.0, 4.0, 2)])
        path = tmp_path / "data.csv"
        count = write_csv(seq, path)
        assert count == 2
        read = list(CsvFileSource(path).iter_records())
        assert len(read) == 2
        assert read[0].location.floor == 2
        assert read[0].location.x == pytest.approx(1.5)

    def test_jsonl_roundtrip(self, tmp_path):
        seq = walk_sequence(points=[(1, 2, 1), (3, 4, 1)])
        path = tmp_path / "data.jsonl"
        write_jsonl(seq, path)
        read = list(JsonlFileSource(path).iter_records())
        assert [r.timestamp for r in read] == [0.0, 5.0]

    def test_csv_missing_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("device_id,x,y\nd,1,2\n")
        with pytest.raises(DataSourceError):
            list(CsvFileSource(path).iter_records())

    def test_csv_bad_field(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("device_id,x,y,floor,timestamp\nd,oops,2,1,0\n")
        with pytest.raises(DataSourceError):
            list(CsvFileSource(path).iter_records())

    def test_jsonl_malformed_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"device_id": "d"\n')
        with pytest.raises(DataSourceError):
            list(JsonlFileSource(path).iter_records())

    def test_jsonl_skips_blank_lines(self, tmp_path):
        path = tmp_path / "ok.jsonl"
        path.write_text(
            '{"device_id":"d","x":1,"y":2,"floor":1,"timestamp":0}\n\n'
        )
        assert len(list(JsonlFileSource(path).iter_records())) == 1

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataSourceError):
            list(CsvFileSource(tmp_path / "absent.csv").iter_records())

    def test_table_source(self):
        rows = [("d", 1.0, 2.0, 1, 0.0), ("d", 2.0, 2.0, 1, 5.0)]
        read = list(TableSource(rows).iter_records())
        assert len(read) == 2

    def test_table_source_bad_arity(self):
        with pytest.raises(DataSourceError):
            list(TableSource([("d", 1.0, 2.0)]).iter_records())

    def test_memory_source(self):
        seq = walk_sequence()
        source = MemorySource(seq)
        assert len(list(source.iter_records())) == len(seq)


class TestStream:
    def test_take(self):
        stream = RecordStream(walk_sequence())
        batch = stream.take(3)
        assert len(batch) == 3
        assert stream.consumed == 3

    def test_take_past_end(self):
        stream = RecordStream(walk_sequence())
        assert len(stream.take(100)) == 10

    def test_take_negative_rejected(self):
        with pytest.raises(DataSourceError):
            RecordStream([]).take(-1)

    def test_take_window_pushback(self):
        stream = RecordStream(walk_sequence(interval=5))
        first = stream.take_window(12.0)  # records at t=0,5,10
        second = stream.take_window(12.0)
        assert [r.timestamp for r in first] == [0, 5, 10]
        assert second[0].timestamp == 15.0

    def test_drain(self):
        stream = RecordStream(walk_sequence())
        stream.take(4)
        assert len(stream.drain()) == 6

    def test_windowed_sequences(self):
        a = walk_sequence("a", interval=5)
        b = walk_sequence("b", interval=5)
        merged = sorted(list(a) + list(b))
        stream = RecordStream(merged)
        windows = list(windowed_sequences(stream, window_seconds=20.0))
        assert len(windows) >= 2
        assert {s.device_id for s in windows[0]} == {"a", "b"}

    def test_windowed_callback(self):
        seen = []
        stream = RecordStream(walk_sequence())
        list(windowed_sequences(stream, 20.0, on_window=seen.append))
        assert seen
