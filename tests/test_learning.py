"""Unit tests for the learning library: all models, metrics, selection."""

import numpy as np
import pytest

from repro.errors import LearningError, ModelNotFittedError
from repro.learning import (
    MODEL_FACTORIES,
    DecisionTreeClassifier,
    GaussianNB,
    KNeighborsClassifier,
    LabelEncoder,
    RandomForestClassifier,
    SoftmaxRegression,
    StandardScaler,
    accuracy,
    confusion_matrix,
    cross_val_score,
    k_fold_indexes,
    macro_f1,
    per_class_report,
    train_test_split,
    weighted_f1,
)


def blobs(n_per_class=40, n_classes=3, spread=0.6, seed=0):
    """Well-separated Gaussian blobs: every sane model should ace these."""
    rng = np.random.default_rng(seed)
    centers = np.array([[0, 0], [6, 0], [0, 6], [6, 6]])[:n_classes]
    features = []
    labels = []
    for code, center in enumerate(centers):
        features.append(rng.normal(center, spread, size=(n_per_class, 2)))
        labels.extend([f"class-{code}"] * n_per_class)
    return np.vstack(features), labels


ALL_MODELS = sorted(MODEL_FACTORIES)


class TestLabelEncoder:
    def test_roundtrip(self):
        encoder = LabelEncoder().fit(["b", "a", "b", "c"])
        codes = encoder.transform(["a", "b", "c"])
        assert codes.tolist() == [0, 1, 2]
        assert encoder.inverse_transform(codes) == ["a", "b", "c"]

    def test_unseen_label_raises(self):
        encoder = LabelEncoder().fit(["a", "b"])
        with pytest.raises(LearningError):
            encoder.transform(["z"])


class TestScaler:
    def test_standardizes(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 3.0, size=(200, 4))
        scaled = StandardScaler().fit_transform(data)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_no_nan(self):
        data = np.array([[1.0, 5.0], [1.0, 7.0], [1.0, 9.0]])
        scaled = StandardScaler().fit_transform(data)
        assert np.all(np.isfinite(scaled))
        assert np.allclose(scaled[:, 0], 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(ModelNotFittedError):
            StandardScaler().transform(np.zeros((1, 2)))

    def test_width_mismatch(self):
        scaler = StandardScaler().fit(np.zeros((5, 3)))
        with pytest.raises(LearningError):
            scaler.transform(np.zeros((2, 4)))


class TestModelsOnBlobs:
    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_high_accuracy_on_separable_data(self, name):
        features, labels = blobs()
        model = MODEL_FACTORIES[name]()
        model.fit(features, labels)
        predicted = model.predict(features)
        assert accuracy(labels, predicted) >= 0.95

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_generalizes_to_test_split(self, name):
        features, labels = blobs(seed=1)
        train_x, test_x, train_y, test_y = train_test_split(
            features, labels, seed=1
        )
        model = MODEL_FACTORIES[name]()
        model.fit(train_x, train_y)
        assert accuracy(test_y, model.predict(test_x)) >= 0.9

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_probabilities_valid(self, name):
        features, labels = blobs(n_per_class=20)
        model = MODEL_FACTORIES[name]()
        model.fit(features, labels)
        probabilities = model.predict_proba(features[:7])
        assert probabilities.shape == (7, 3)
        assert np.allclose(probabilities.sum(axis=1), 1.0, atol=1e-6)
        assert np.all(probabilities >= 0.0)

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_unfitted_predict_raises(self, name):
        with pytest.raises(ModelNotFittedError):
            MODEL_FACTORIES[name]().predict(np.zeros((1, 2)))

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_single_class_rejected(self, name):
        with pytest.raises(LearningError):
            MODEL_FACTORIES[name]().fit(np.zeros((5, 2)), ["same"] * 5)

    @pytest.mark.parametrize("name", ALL_MODELS)
    def test_misaligned_labels_rejected(self, name):
        with pytest.raises(LearningError):
            MODEL_FACTORIES[name]().fit(np.zeros((5, 2)), ["a", "b"])

    def test_predict_one(self):
        features, labels = blobs(n_per_class=15)
        model = SoftmaxRegression().fit(features, labels)
        assert model.predict_one(np.array([0.0, 0.0])) == "class-0"

    def test_nan_features_rejected(self):
        bad = np.array([[0.0, np.nan], [1.0, 1.0]])
        with pytest.raises(LearningError):
            GaussianNB().fit(bad, ["a", "b"])

    def test_feature_width_mismatch_at_predict(self):
        features, labels = blobs(n_per_class=10)
        model = KNeighborsClassifier().fit(features, labels)
        with pytest.raises(LearningError):
            model.predict(np.zeros((1, 5)))


class TestModelSpecifics:
    def test_tree_respects_max_depth(self):
        features, labels = blobs(n_per_class=30, seed=2)
        stump = DecisionTreeClassifier(max_depth=1)
        stump.fit(features, labels)
        # A depth-1 tree on 3 classes cannot be perfect.
        assert accuracy(labels, stump.predict(features)) < 1.0

    def test_forest_beats_or_ties_single_stump_on_noise(self):
        features, labels = blobs(spread=2.5, seed=3)
        stump = DecisionTreeClassifier(max_depth=2, seed=0)
        forest = RandomForestClassifier(n_trees=20, max_depth=6, seed=0)
        stump.fit(features, labels)
        forest.fit(features, labels)
        assert accuracy(labels, forest.predict(features)) >= accuracy(
            labels, stump.predict(features)
        )

    def test_forest_deterministic_by_seed(self):
        features, labels = blobs(seed=4)
        a = RandomForestClassifier(n_trees=5, seed=1).fit(features, labels)
        b = RandomForestClassifier(n_trees=5, seed=1).fit(features, labels)
        assert a.predict(features) == b.predict(features)

    def test_knn_k_larger_than_train(self):
        features = np.array([[0.0, 0.0], [5.0, 5.0], [5.1, 5.0]])
        model = KNeighborsClassifier(k=50)
        model.fit(features, ["a", "b", "b"])
        assert model.predict_one(np.array([5.0, 5.1])) == "b"

    def test_logistic_hyperparameter_validation(self):
        with pytest.raises(LearningError):
            SoftmaxRegression(learning_rate=0)
        with pytest.raises(LearningError):
            SoftmaxRegression(epochs=0)

    def test_binary_problem(self):
        features, labels = blobs(n_classes=2)
        model = SoftmaxRegression().fit(features, labels)
        assert set(model.classes) == {"class-0", "class-1"}


class TestMetrics:
    TRUTH = ["a", "a", "a", "b", "b", "c"]
    PRED = ["a", "a", "b", "b", "b", "a"]

    def test_accuracy(self):
        assert accuracy(self.TRUTH, self.PRED) == pytest.approx(4 / 6)

    def test_misaligned_raises(self):
        with pytest.raises(LearningError):
            accuracy(["a"], ["a", "b"])

    def test_confusion_matrix(self):
        matrix, labels = confusion_matrix(self.TRUTH, self.PRED)
        assert labels == ["a", "b", "c"]
        assert matrix[0].tolist() == [2, 1, 0]  # truth=a
        assert matrix[2].tolist() == [1, 0, 0]  # truth=c
        assert matrix.sum() == 6

    def test_per_class_report(self):
        reports = {r.label: r for r in per_class_report(self.TRUTH, self.PRED)}
        assert reports["a"].precision == pytest.approx(2 / 3)
        assert reports["a"].recall == pytest.approx(2 / 3)
        assert reports["b"].recall == pytest.approx(1.0)
        assert reports["c"].f1 == 0.0
        assert reports["c"].support == 1

    def test_macro_vs_weighted(self):
        assert macro_f1(self.TRUTH, self.PRED) < weighted_f1(
            self.TRUTH, self.PRED
        ) + 0.25
        assert 0.0 <= macro_f1(self.TRUTH, self.PRED) <= 1.0

    def test_perfect_prediction(self):
        assert macro_f1(self.TRUTH, self.TRUTH) == 1.0
        assert accuracy(self.TRUTH, self.TRUTH) == 1.0


class TestModelSelection:
    def test_split_fractions(self):
        features, labels = blobs(n_per_class=20)
        train_x, test_x, train_y, test_y = train_test_split(
            features, labels, test_fraction=0.25, seed=0
        )
        assert len(train_y) + len(test_y) == 60
        assert len(test_y) == pytest.approx(15, abs=2)

    def test_split_stratified_keeps_all_classes_in_train(self):
        features, labels = blobs(n_per_class=4)
        _, _, train_y, _ = train_test_split(
            features, labels, test_fraction=0.5, seed=3
        )
        assert set(train_y) == set(labels)

    def test_split_validation(self):
        features, labels = blobs(n_per_class=5)
        with pytest.raises(LearningError):
            train_test_split(features, labels, test_fraction=1.5)
        with pytest.raises(LearningError):
            train_test_split(features, labels[:-1])

    def test_k_fold_partition(self):
        folds = list(k_fold_indexes(20, k=4, seed=0))
        assert len(folds) == 4
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test.tolist()) == list(range(20))
        for train, test in folds:
            assert set(train) & set(test) == set()

    def test_k_fold_validation(self):
        with pytest.raises(LearningError):
            list(k_fold_indexes(3, k=5))
        with pytest.raises(LearningError):
            list(k_fold_indexes(10, k=1))

    def test_cross_val_score(self):
        features, labels = blobs(n_per_class=20)
        scores = cross_val_score(
            lambda: GaussianNB(), features, labels, k=4, seed=0
        )
        assert len(scores) == 4
        assert min(scores) >= 0.9
