"""The telemetry subsystem: registry algebra, exposition, neutrality.

Three pillars, mirroring the guarantees ``repro.telemetry`` documents:

- **Merge algebra.**  Counter and histogram merges are exact and
  order-independent — the hypothesis suite partitions one observation
  stream across arbitrary worker registries, merges the snapshots in
  shuffled order, and demands bit-for-bit equality with the
  single-registry fold (the same discipline as the ``PartialKnowledge``
  shard-algebra tests).  Thread and process concurrency ride the same
  invariant.
- **Exposition.**  Prometheus text (cumulative buckets, ``+Inf``,
  deduplicated ``TYPE`` lines, label escaping), the JSON snapshot, and
  the live :class:`MetricsServer` endpoints.
- **Exactness neutrality.**  Telemetry observes, it never participates:
  translation output and knowledge are bit-for-bit identical with
  telemetry enabled vs disabled, across every backend and record layout.
"""

from __future__ import annotations

import concurrent.futures
import json
import math
import random
import threading
import urllib.request

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Translator
from repro.core.complementing import ExactSum
from repro.durability import encode
from repro.errors import ConfigError
from repro.knowledge import KnowledgeStore
from repro.live.service import LiveStats, VenueStats
from repro.telemetry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    MetricsServer,
    NullRegistry,
    SPAN_HISTOGRAM,
    get_registry,
    render_json,
    render_prometheus,
    set_registry,
    use_registry,
)

from .conftest import make_two_shop_dsm, stationary_sequence, walk_sequence


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_rejects_float_increments(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ConfigError, match="integers"):
            counter.inc(1.5)

    def test_rejects_bool_increments(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ConfigError, match="integers"):
            counter.inc(True)

    def test_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ConfigError, match="monotone"):
            counter.inc(-1)

    def test_label_series_are_independent(self):
        registry = MetricsRegistry()
        registry.counter("c", venue="mall").inc(3)
        registry.counter("c", venue="office").inc(5)
        assert registry.counter("c", venue="mall").value == 3
        assert registry.counter("c", venue="office").value == 5

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        registry.counter("c", a="1", b="2").inc()
        assert registry.counter("c", b="2", a="1").value == 1


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10.0)
        gauge.inc(2.5)
        gauge.dec(0.5)
        assert gauge.value == 12.0


class TestHistogram:
    def test_default_buckets_and_counts(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.bounds == DEFAULT_BUCKETS
        histogram.observe(0.003)
        histogram.observe(0.003)
        histogram.observe(100.0)  # lands in +Inf
        assert histogram.count == 3
        counts = histogram.bucket_counts()
        assert len(counts) == len(DEFAULT_BUCKETS) + 1
        assert sum(counts) == 3
        assert counts[-1] == 1
        assert histogram.max == 100.0
        assert histogram.sum == pytest.approx(100.006)

    def test_bounds_are_inclusive_upper(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        histogram.observe(1.0)
        assert histogram.bucket_counts() == [1, 0, 0]
        histogram.observe(1.0000001)
        assert histogram.bucket_counts() == [1, 1, 0]

    def test_custom_bounds_shared_across_label_series(self):
        registry = MetricsRegistry()
        first = registry.histogram("h", buckets=(1.0, 2.0), venue="a")
        second = registry.histogram("h", venue="b")
        assert second.bounds == first.bounds == (1.0, 2.0)

    def test_conflicting_bounds_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ConfigError, match="fixed at creation"):
            registry.histogram("h", buckets=(5.0,))

    def test_unsorted_bounds_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigError, match="strictly increasing"):
            registry.histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ConfigError, match="strictly increasing"):
            registry.histogram("h2", buckets=(1.0, 1.0))
        with pytest.raises(ConfigError, match="strictly increasing"):
            registry.histogram("h3", buckets=())


class TestRegistry:
    def test_one_kind_per_name(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ConfigError, match="already registered"):
            registry.gauge("m")
        with pytest.raises(ConfigError, match="already registered"):
            registry.histogram("m")

    def test_instruments_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a", x="2")
        registry.counter("a", x="1")
        names = [
            (i.name, i.labels) for i in registry.instruments()
        ]
        assert names == sorted(names)

    def test_str(self):
        registry = MetricsRegistry()
        registry.counter("c")
        registry.gauge("g")
        assert "1 counters" in str(registry)


# ----------------------------------------------------------------------
# Snapshot / merge algebra
# ----------------------------------------------------------------------
def observe_all(registry: MetricsRegistry, values) -> None:
    histogram = registry.histogram("h", venue="mall")
    counter = registry.counter("c")
    for value in values:
        histogram.observe(value)
        counter.inc(1)


def exact_fingerprint(registry: MetricsRegistry) -> dict:
    """A histogram's full exact state (partials included, bit-level)."""
    snapshot = registry.snapshot()
    return {
        "counters": sorted(
            (e["name"], tuple(map(tuple, e["labels"])), e["value"])
            for e in snapshot["counters"]
        ),
        "histograms": sorted(
            (
                e["name"],
                tuple(map(tuple, e["labels"])),
                tuple(e["counts"]),
                e["count"],
                # The partial *list* is not canonical (different exact
                # accumulation orders can settle on different expansions
                # of the same exact real); the exact value it represents
                # is, and math.fsum rounds an expansion exactly.
                e["sum"],
                math.fsum(e["sum_partials"]),
                e["max"],
            )
            for e in snapshot["histograms"]
        ),
    }


floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestMergeAlgebra:
    @given(
        values=st.lists(floats, min_size=1, max_size=40),
        cuts=st.lists(st.integers(min_value=0, max_value=40), max_size=5),
        order_seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_partitioned_merge_is_order_independent_and_exact(
        self, values, cuts, order_seed
    ):
        """Any partition of one observation stream across worker
        registries, merged in any order, reproduces the single-registry
        fold bit for bit — counters, bucket counts, and the exact sums
        (the correctly-rounded value every expansion represents)."""
        reference = MetricsRegistry()
        observe_all(reference, values)

        bounds = sorted({cut % (len(values) + 1) for cut in cuts})
        pieces = []
        previous = 0
        for bound in bounds + [len(values)]:
            if bound > previous:
                pieces.append(values[previous:bound])
                previous = bound
        workers = []
        for piece in pieces:
            worker = MetricsRegistry()
            observe_all(worker, piece)
            workers.append(worker.snapshot())

        random.Random(order_seed).shuffle(workers)
        merged = MetricsRegistry()
        for snapshot in workers:
            merged.merge_snapshot(snapshot)

        assert exact_fingerprint(merged) == exact_fingerprint(reference)

    def test_merge_is_exact_where_float_addition_is_not(self):
        """The classic exact-sum witness: values whose naive left-fold
        differs from their exact sum still merge exactly."""
        values = [1e16, 1.0, -1e16, 1.0] * 8
        naive = 0.0
        for value in values:
            naive += value
        exact = ExactSum()
        for value in values:
            exact.add(value)
        assert naive != exact.value  # the witness is real

        left, right = MetricsRegistry(), MetricsRegistry()
        observe_all(left, values[::2])
        observe_all(right, values[1::2])
        merged = MetricsRegistry()
        merged.merge_snapshot(right.snapshot())
        merged.merge_snapshot(left.snapshot())
        assert merged.histogram("h", venue="mall").sum == exact.value

    def test_gauges_merge_by_max(self):
        low, high = MetricsRegistry(), MetricsRegistry()
        low.gauge("depth").set(2.0)
        high.gauge("depth").set(7.0)
        merged = MetricsRegistry()
        merged.merge_snapshot(low.snapshot())
        merged.merge_snapshot(high.snapshot())
        assert merged.gauge("depth").value == 7.0
        merged.merge_snapshot(low.snapshot())  # lower never regresses
        assert merged.gauge("depth").value == 7.0

    def test_snapshot_is_picklable_plain_data(self):
        registry = MetricsRegistry()
        observe_all(registry, [0.5, 3.0])
        with registry.trace("t", venue="mall"):
            pass
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_snapshot_isolation(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(1)
        snapshot = registry.snapshot()
        registry.counter("c").inc(10)
        assert snapshot["counters"][0]["value"] == 1


def _worker_snapshot(values: "list[float]") -> dict:
    """Process-pool worker: observe into a private registry, ship the
    snapshot home (workers never share a registry)."""
    registry = MetricsRegistry()
    observe_all(registry, values)
    return registry.snapshot()


class TestConcurrency:
    def test_thread_updates_are_exact(self):
        registry = MetricsRegistry()
        values = [0.001 * i for i in range(400)]
        chunks = [values[i::4] for i in range(4)]
        threads = [
            threading.Thread(target=observe_all, args=(registry, chunk))
            for chunk in chunks
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        histogram = registry.histogram("h", venue="mall")
        assert histogram.count == 400
        assert registry.counter("c").value == 400
        # Same multiset of observations -> same exact sum, regardless of
        # interleaving (ExactSum is order-independent).
        reference = MetricsRegistry()
        observe_all(reference, values)
        assert histogram.sum == reference.histogram("h", venue="mall").sum

    def test_process_worker_snapshots_merge_exactly(self):
        values = [1e16, 1.0, -1e16, 1.0] * 4 + [0.25, 0.75]
        chunks = [values[i::3] for i in range(3)]
        with concurrent.futures.ProcessPoolExecutor(max_workers=3) as pool:
            snapshots = list(pool.map(_worker_snapshot, chunks))
        merged = MetricsRegistry()
        for snapshot in snapshots:
            merged.merge_snapshot(snapshot)
        reference = MetricsRegistry()
        observe_all(reference, values)
        assert exact_fingerprint(merged) == exact_fingerprint(reference)


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_records_parent_and_depth(self):
        registry = MetricsRegistry()
        with registry.trace("outer", venue="mall"):
            with registry.trace("inner"):
                pass
        spans = registry.recent_spans()
        assert [span.name for span in spans] == ["inner", "outer"]
        inner, outer = spans
        assert outer.parent_id is None and outer.depth == 0
        assert inner.parent_id == outer.span_id and inner.depth == 1
        assert inner.duration is not None and inner.duration >= 0.0
        assert outer.labels == {"venue": "mall"}

    def test_spans_feed_the_span_histogram(self):
        registry = MetricsRegistry()
        with registry.trace("phase_one"):
            pass
        histogram = registry.histogram(SPAN_HISTOGRAM, span="phase_one")
        assert histogram.count == 1

    def test_ring_is_bounded(self):
        registry = MetricsRegistry(span_ring=4)
        for index in range(10):
            with registry.trace(f"s{index}"):
                pass
        names = [span.name for span in registry.recent_spans()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_span_survives_exceptions(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            with registry.trace("boom"):
                raise ValueError("x")
        (span,) = registry.recent_spans()
        assert span.name == "boom" and span.duration is not None

    def test_to_dict_round_trips_through_json(self):
        registry = MetricsRegistry()
        with registry.trace("t", venue="mall"):
            pass
        (span,) = registry.recent_spans()
        payload = json.loads(json.dumps(span.to_dict()))
        assert payload["name"] == "t"
        assert payload["labels"] == {"venue": "mall"}


# ----------------------------------------------------------------------
# The global registry
# ----------------------------------------------------------------------
class TestGlobalRegistry:
    def test_defaults_to_disabled(self):
        assert isinstance(get_registry(), NullRegistry)
        assert get_registry().enabled is False

    def test_set_and_restore(self):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            assert get_registry() is registry
        finally:
            set_registry(None)
        assert isinstance(get_registry(), NullRegistry)
        assert isinstance(previous, NullRegistry)

    def test_use_registry_restores_on_error(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with use_registry(registry):
                assert get_registry() is registry
                raise RuntimeError("x")
        assert isinstance(get_registry(), NullRegistry)

    def test_null_registry_is_inert(self):
        null = NullRegistry()
        null.counter("c", venue="x").inc(5)
        null.gauge("g").set(1.0)
        null.histogram("h").observe(0.5)
        with null.trace("t"):
            pass
        assert null.recent_spans() == []
        assert null.snapshot() == {
            "counters": [],
            "gauges": [],
            "histograms": [],
            "spans": [],
        }
        assert list(null.instruments()) == []
        null.merge_snapshot(MetricsRegistry().snapshot())  # no-op


# ----------------------------------------------------------------------
# Exposition
# ----------------------------------------------------------------------
class TestPrometheusText:
    def render(self, registry: MetricsRegistry) -> str:
        return render_prometheus(registry.snapshot())

    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("trips_runs_total", mode="batch").inc(2)
        registry.gauge("trips_depth").set(3.5)
        text = self.render(registry)
        assert "# TYPE trips_runs_total counter" in text
        assert 'trips_runs_total{mode="batch"} 2' in text
        assert "# TYPE trips_depth gauge" in text
        assert "trips_depth 3.5" in text

    def test_type_lines_deduplicated_across_series(self):
        registry = MetricsRegistry()
        registry.counter("c_total", venue="a").inc()
        registry.counter("c_total", venue="b").inc()
        text = self.render(registry)
        assert text.count("# TYPE c_total counter") == 1

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", buckets=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(1.5)
        histogram.observe(99.0)
        text = self.render(registry)
        assert 'h_seconds_bucket{le="1.0"} 1' in text
        assert 'h_seconds_bucket{le="2.0"} 2' in text
        assert 'h_seconds_bucket{le="+Inf"} 3' in text
        assert "h_seconds_count 3" in text
        assert "h_seconds_sum 101.0" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", venue='mall "north"\n\\x').inc()
        text = self.render(registry)
        assert 'venue="mall \\"north\\"\\n\\\\x"' in text

    def test_render_json_sorted_and_terminated(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        payload = render_json(registry.snapshot())
        assert payload.endswith("\n")
        assert json.loads(payload)["counters"][0]["value"] == 1


class TestMetricsServer:
    def test_serves_text_and_json(self):
        registry = MetricsRegistry()
        registry.counter("trips_runs_total").inc(7)
        with MetricsServer(registry, port=0) as server:
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(f"{base}/metrics") as response:
                assert response.status == 200
                assert "version=0.0.4" in response.headers["Content-Type"]
                text = response.read().decode("utf-8")
            assert "trips_runs_total 7" in text
            with urllib.request.urlopen(f"{base}/metrics.json") as response:
                payload = json.loads(response.read().decode("utf-8"))
            assert payload["counters"][0]["value"] == 7

    def test_scrapes_are_live(self):
        registry = MetricsRegistry()
        with MetricsServer(registry, port=0) as server:
            base = f"http://127.0.0.1:{server.port}"
            registry.counter("c").inc()
            first = urllib.request.urlopen(f"{base}/metrics.json").read()
            registry.counter("c").inc()
            second = urllib.request.urlopen(f"{base}/metrics.json").read()
        assert json.loads(first)["counters"][0]["value"] == 1
        assert json.loads(second)["counters"][0]["value"] == 2

    def test_unknown_path_is_404(self):
        with MetricsServer(MetricsRegistry(), port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/nope"
                )
            assert excinfo.value.code == 404


# ----------------------------------------------------------------------
# Exactness neutrality: telemetry on/off -> bit-for-bit identical output
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def neutrality_inputs():
    translator = Translator(make_two_shop_dsm())
    sequences = []
    for i in range(4):
        sequences.append(
            stationary_sequence(
                f"dwell-{i}",
                at=(5.0 if i % 2 == 0 else 15.0, 15.0, 1),
                seed=i,
                start=100.0 * i,
            )
        )
    for i in range(3):
        sequences.append(walk_sequence(f"walk-{i}", start=50.0 * i))
    return translator, sequences


@pytest.mark.parametrize("layout", ["objects", "columnar"])
@pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
def test_translation_is_bit_identical_with_telemetry(
    neutrality_inputs, backend, layout, monkeypatch
):
    """The cardinal invariant: telemetry observes, never participates.
    The durability codec serializes every float bit-exactly, so encoded
    equality is bit-for-bit equality."""
    from repro.engine import Engine, EngineConfig

    monkeypatch.setenv("TRIPS_RECORD_LAYOUT", layout)
    translator, sequences = neutrality_inputs
    config = EngineConfig(backend=backend, chunk_size=2, workers=2)

    baseline = Engine(translator, config).translate_batch(sequences)
    with use_registry(MetricsRegistry()) as registry:
        instrumented = Engine(translator, config).translate_batch(sequences)
        assert registry.counter(
            "trips_engine_runs_total", mode="batch", layout=layout
        ).value == 1  # telemetry really was live

    assert instrumented.results == baseline.results
    assert encode(instrumented.knowledge) == encode(baseline.knowledge)


def test_live_finalize_is_bit_identical_with_telemetry(neutrality_inputs):
    from repro.engine import EngineConfig
    from repro.live import LiveConfig, LiveTranslationService

    translator, sequences = neutrality_inputs
    records = sorted(
        (record for sequence in sequences for record in sequence.records),
        key=lambda record: (record.timestamp, record.device_id),
    )

    def run():
        from repro.positioning import RecordStream

        service = LiveTranslationService(
            {"shop": translator},
            EngineConfig(backend="threads", chunk_size=2),
            LiveConfig(window_seconds=120.0),
        )
        with service:
            service.run_stream(
                RecordStream(iter(records)), venue_id="shop"
            )
            return service.finalize()["shop"]

    baseline = run()
    with use_registry(MetricsRegistry()) as registry:
        instrumented = run()
        assert registry.counter("trips_live_windows_total").value > 0

    assert instrumented.results == baseline.results
    assert encode(instrumented.knowledge) == encode(baseline.knowledge)


def test_knowledge_roll_telemetry(neutrality_inputs):
    translator, sequences = neutrality_inputs
    with use_registry(MetricsRegistry()) as registry:
        store = KnowledgeStore(
            regions=list(translator.knowledge_regions()),
            retention="window:1",
        )
        batch = translator.translate_batch(sequences[:2])
        store.fold(batch.knowledge.to_partial(), start=0.0, end=10.0)
        store.roll()
        batch = translator.translate_batch(sequences[2:4])
        store.fold(batch.knowledge.to_partial(), start=10.0, end=20.0)
        retired = store.roll()
        assert len(retired) == 1
        assert registry.counter("trips_knowledge_rolls_total").value == 2
        assert registry.counter("trips_knowledge_retired_total").value == 1


# ----------------------------------------------------------------------
# Stats tables (satellite: durability columns + stable alignment)
# ----------------------------------------------------------------------
class TestLiveStatsTable:
    def test_wal_and_snapshot_columns_appear_when_nonzero(self):
        stats = LiveStats(
            windows=3, records=10, wal_bytes=2048, snapshots=1
        )
        summary = stats.format_table().splitlines()[0]
        assert "wal=2,048B" in summary
        assert "snapshots=1" in summary

    def test_durability_columns_absent_without_journal(self):
        stats = LiveStats(windows=3, records=10)
        assert "wal=" not in stats.format_table()

    def test_long_venue_names_keep_alignment(self):
        stats = LiveStats(
            venues={
                "mall": VenueStats("mall", windows=1),
                "a-very-long-venue-identifier": VenueStats(
                    "a-very-long-venue-identifier", windows=2
                ),
            }
        )
        lines = stats.format_table().splitlines()[1:]
        # Both rows' window columns start at the same offset: the venue
        # column grew to fit the longest id.
        offsets = {line.index(" windows") for line in lines}
        assert len(offsets) == 1


class TestClusterStatsTable:
    def test_per_shard_epochs_and_durability_columns(self):
        from repro.distributed.service import ClusterStats

        shard = LiveStats(
            windows=2,
            records=5,
            wal_bytes=512,
            snapshots=2,
            venues={"mall": VenueStats("mall", retained_epochs=3)},
        )
        table = ClusterStats(shards=1, per_shard=(shard,)).format_table()
        shard_line = next(
            line for line in table.splitlines() if "shard 0" in line
        )
        assert "3 epochs" in shard_line
        assert "wal=512B" in shard_line
        assert "snapshots=2" in shard_line
