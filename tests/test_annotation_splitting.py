"""Unit + property tests for density-based splitting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.annotation import (
    DensitySplitter,
    SnippetKind,
    SplitterConfig,
)
from repro.errors import AnnotationError
from repro.geometry import Point
from repro.positioning import PositioningSequence, RawPositioningRecord

from .conftest import stationary_sequence, walk_sequence


def dwell_then_walk(seed=0):
    """30 dwell records, 10 walking records, 30 dwell records."""
    dwell_a = stationary_sequence("dev", at=(5, 5, 1), count=30, seed=seed)
    walk = [
        RawPositioningRecord(150 + i * 5.0, "dev", Point(5 + i * 3.0, 5, 1))
        for i in range(10)
    ]
    dwell_b = stationary_sequence(
        "dev", at=(35, 5, 1), count=30, start=200.0, seed=seed + 1
    )
    return PositioningSequence(
        "dev", list(dwell_a) + walk + list(dwell_b)
    )


class TestSplitting:
    def test_dense_transit_dense(self):
        snippets = DensitySplitter().split(dwell_then_walk())
        kinds = [s.kind for s in snippets]
        assert kinds[0] is SnippetKind.DENSE
        assert kinds[-1] is SnippetKind.DENSE
        assert SnippetKind.TRANSIT in kinds

    def test_pure_dwell_single_dense(self):
        seq = stationary_sequence(count=40)
        snippets = DensitySplitter().split(seq)
        assert len(snippets) == 1
        assert snippets[0].kind is SnippetKind.DENSE

    def test_pure_walk_single_transit(self):
        seq = walk_sequence(points=[(i * 6.0, 0, 1) for i in range(30)])
        snippets = DensitySplitter().split(seq)
        assert all(s.kind is SnippetKind.TRANSIT for s in snippets)

    def test_single_record_is_transit(self):
        seq = PositioningSequence(
            "dev", [RawPositioningRecord(0.0, "dev", Point(0, 0))]
        )
        snippets = DensitySplitter().split(seq)
        assert len(snippets) == 1 and snippets[0].kind is SnippetKind.TRANSIT

    def test_short_flicker_demoted(self):
        # A 3-record cluster lasting 10 s is too short for a stay.
        config = SplitterConfig(min_dense_duration=30.0)
        records = [
            RawPositioningRecord(i * 5.0, "dev", Point(i * 6.0, 0, 1))
            for i in range(10)
        ]
        records[5] = RawPositioningRecord(25.0, "dev", Point(24.0, 0, 1))
        seq = PositioningSequence("dev", records)
        snippets = DensitySplitter(config).split(seq)
        assert all(s.kind is SnippetKind.TRANSIT for s in snippets)

    def test_snippet_time_range(self):
        snippets = DensitySplitter().split(dwell_then_walk())
        first = snippets[0]
        assert first.time_range.start == first.records[0].timestamp
        assert first.duration > 0

    def test_floor_split_separates_clusters(self):
        # Same (x, y) on two floors cannot be one dense cluster.
        a = stationary_sequence("dev", at=(5, 5, 1), count=20)
        b = stationary_sequence("dev", at=(5, 5, 2), count=20, start=100.0)
        seq = PositioningSequence("dev", list(a) + list(b))
        snippets = DensitySplitter().split(seq)
        dense = [s for s in snippets if s.kind is SnippetKind.DENSE]
        assert len(dense) == 2

    def test_config_validation(self):
        with pytest.raises(AnnotationError):
            SplitterConfig(eps_space=0)
        with pytest.raises(AnnotationError):
            SplitterConfig(min_pts=1)
        with pytest.raises(AnnotationError):
            SplitterConfig(min_dense_duration=-1)


class TestPartitionInvariant:
    """The snippets must partition the sequence exactly (DESIGN.md)."""

    def check_partition(self, sequence):
        snippets = DensitySplitter().split(sequence)
        assert snippets[0].start == 0
        assert snippets[-1].end == len(sequence)
        for before, after in zip(snippets, snippets[1:]):
            assert before.end == after.start
        rebuilt = [r for s in snippets for r in s.records]
        assert rebuilt == list(sequence.records)

    def test_partition_on_mixed(self):
        self.check_partition(dwell_then_walk())

    def test_partition_on_dwell(self):
        self.check_partition(stationary_sequence(count=25))

    def test_partition_on_simulated(self, simulated):
        self.check_partition(simulated.raw)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=50),
                st.floats(min_value=0, max_value=50),
            ),
            min_size=2,
            max_size=40,
        ),
        st.floats(min_value=1.0, max_value=20.0),
    )
    def test_partition_property(self, coordinates, interval):
        records = [
            RawPositioningRecord(i * interval, "dev", Point(x, y, 1))
            for i, (x, y) in enumerate(coordinates)
        ]
        self.check_partition(PositioningSequence("dev", records))
