"""Durability: the versioned codec, the WAL/journal, exact recovery.

The tentpole invariant: a service killed at *any* window boundary and
recovered from its state directory (snapshot + WAL tail) finishes the
feed to a ``finalize()`` bit-for-bit equal to an uninterrupted run —
under every retention policy, and for every shard of a sharded cluster.
That only holds if every layer below is exact, so the suite works
upward: codec round-trips (ExactSum expansions restored verbatim), WAL
torn-tail/corruption semantics, snapshot filtering, then the recovery
property itself.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Translator
from repro.core.complementing import (
    ExactSum,
    MobilityKnowledge,
    PartialKnowledge,
)
from repro.durability import (
    FORMAT_VERSION,
    SNAPSHOT_MAGIC,
    WAL_MAGIC,
    DurableStateJournal,
    WriteAheadLog,
    decode,
    decode_records,
    decode_retention,
    encode,
    encode_records,
    encode_retention,
)
from repro.engine import EngineConfig
from repro.errors import PersistenceError
from repro.knowledge import (
    ExponentialDecay,
    KnowledgeStore,
    SlidingWindow,
    Unbounded,
)
from repro.live import LiveConfig, LiveTranslationService
from repro.positioning import RecordStream, windowed_records

from .conftest import make_two_shop_dsm
from .test_knowledge_store import (
    REGIONS,
    annotated_sequences,
    corpora,
    partial_of,
)
from .test_live import shop_records

WINDOW_SECONDS = 60.0

finite_floats = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)


def json_round_trip(payload: dict) -> dict:
    """Push a codec payload through the actual wire representation."""
    return json.loads(json.dumps(payload, separators=(",", ":")))


def store_state(store: KnowledgeStore) -> dict:
    """A store's wire encoding minus the ``track_deltas`` plumbing flag
    (set on journaled services only, irrelevant to knowledge state)."""
    state = encode(store)
    state.pop("track_deltas")
    return state


# ----------------------------------------------------------------------
# Codec round-trips: bit-for-bit, through real JSON
# ----------------------------------------------------------------------
class TestCodecRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(finite_floats, max_size=16))
    def test_exactsum_expansion_restored_verbatim(self, values):
        total = ExactSum(values)
        clone = decode(json_round_trip(encode(total)))
        # Not just equal-sum: the internal expansion is identical, so
        # the restored accumulator walks the same states forever after.
        assert clone._partials == total._partials
        assert clone == total
        assert clone.value == total.value

    @settings(max_examples=50, deadline=None)
    @given(st.lists(finite_floats, max_size=16), st.lists(finite_floats, max_size=8))
    def test_restored_exactsum_accumulates_identically(self, values, more):
        total = ExactSum(values)
        clone = decode(json_round_trip(encode(total)))
        for value in more:
            total.add(value)
            clone.add(value)
        assert clone._partials == total._partials

    @settings(max_examples=40, deadline=None)
    @given(corpora)
    def test_partial_round_trips(self, corpus):
        partial = partial_of(corpus)
        clone = decode(json_round_trip(encode(partial)))
        assert clone == partial

    @settings(max_examples=30, deadline=None)
    @given(corpora, corpora)
    def test_restored_partial_folds_identically(self, corpus, extra):
        partial = partial_of(corpus)
        clone = decode(json_round_trip(encode(partial)))
        partial.add(partial_of(extra))
        clone.add(partial_of(extra))
        assert clone == partial

    @settings(max_examples=30, deadline=None)
    @given(corpora)
    def test_knowledge_round_trips(self, corpus):
        knowledge = MobilityKnowledge.from_sequences(corpus, REGIONS)
        clone = decode(json_round_trip(encode(knowledge)))
        assert clone == knowledge
        assert clone.smoothing == knowledge.smoothing

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.lists(annotated_sequences(), max_size=3), max_size=4),
        st.lists(annotated_sequences(), max_size=2),
        st.sampled_from(
            [
                Unbounded(),
                SlidingWindow(max_epochs=2),
                SlidingWindow(max_epochs=2, ttl_seconds=1e5),
                ExponentialDecay(3.0),
            ]
        ),
    )
    def test_store_round_trips_and_evolves_identically(
        self, epochs, open_epoch, retention
    ):
        """The full store — knowledge, ring, counters, open epoch,
        watermark, retention — survives the wire, and the clone then
        *evolves* identically under further folds and rolls."""
        store = KnowledgeStore(REGIONS, retention=retention)
        store.track_deltas = True
        clock = 0.0
        for epoch in epochs:
            clock += 100.0
            store.fold(partial_of(epoch), start=clock - 50.0, end=clock)
            store.roll()
        store.fold(partial_of(open_epoch), start=clock, end=clock + 10.0)

        clone = decode(json_round_trip(encode(store)))
        assert clone.knowledge == store.knowledge
        assert [encode(e) for e in clone.epochs] == [
            encode(e) for e in store.epochs
        ]
        assert clone.epochs_rolled == store.epochs_rolled
        assert clone.epochs_retired == store.epochs_retired
        assert clone.newest_timestamp == store.newest_timestamp
        assert clone.track_deltas == store.track_deltas
        assert encode_retention(clone.retention) == encode_retention(
            store.retention
        )
        for source in (store, clone):
            source.roll()
            source.fold(
                partial_of(open_epoch),
                start=clock + 200.0,
                end=clock + 260.0,
            )
            source.roll()
        assert clone.knowledge == store.knowledge
        assert clone.last_epoch.partial == store.last_epoch.partial
        assert clone.to_partial() == store.to_partial()

    def test_records_round_trip(self):
        records = shop_records()
        rows = json_round_trip({"rows": encode_records(records)})["rows"]
        assert decode_records(rows) == records

    @pytest.mark.parametrize(
        "policy",
        [
            Unbounded(),
            SlidingWindow(max_epochs=4),
            SlidingWindow(ttl_seconds=300.0),
            SlidingWindow(max_epochs=4, ttl_seconds=300.0),
            ExponentialDecay(8.0),
        ],
    )
    def test_retention_encodes_structurally(self, policy):
        clone = decode_retention(json_round_trip(encode_retention(policy)))
        assert type(clone) is type(policy)
        assert clone.name == policy.name
        assert encode_retention(clone) == encode_retention(policy)

    def test_custom_retention_policy_has_no_encoding(self):
        class Custom:
            name = "custom"
            keeps_epochs = False

            def on_roll(self, store, now):
                return []

        with pytest.raises(PersistenceError):
            encode_retention(Custom())
        with pytest.raises(PersistenceError):
            decode_retention({"kind": "forever"})

    def test_unknown_payloads_raise(self):
        with pytest.raises(PersistenceError):
            encode(object())
        with pytest.raises(PersistenceError):
            decode({"t": "mystery"})
        with pytest.raises(PersistenceError):
            decode("not a dict")
        with pytest.raises(PersistenceError):
            decode({"t": "partial"})  # missing every field
        with pytest.raises(PersistenceError):
            decode_records([[1.0, "dev"]])  # truncated row


# ----------------------------------------------------------------------
# The write-ahead log
# ----------------------------------------------------------------------
class TestWriteAheadLog:
    def test_append_and_replay(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        assert wal.open() == []
        wal.append({"t": "window", "window": 0})
        wal.append({"t": "window", "window": 1})
        wal.close()
        reopened = WriteAheadLog(tmp_path / "wal.jsonl")
        assert reopened.open() == [
            {"t": "window", "window": 0},
            {"t": "window", "window": 1},
        ]
        reopened.close()

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.open()
        wal.append({"t": "window", "window": 0})
        wal.close()
        with open(path, "ab") as handle:
            handle.write(b'{"t": "window", "win')  # crash mid-write
        wal = WriteAheadLog(path)
        assert wal.open() == [{"t": "window", "window": 0}]
        # The torn tail is gone for good: the next append starts clean.
        wal.append({"t": "window", "window": 1})
        wal.close()
        wal = WriteAheadLog(path)
        assert [e["window"] for e in wal.open()] == [0, 1]
        wal.close()

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.open()
        wal.append({"t": "window", "window": 0})
        wal.append({"t": "window", "window": 1})
        wal.close()
        raw = path.read_bytes().splitlines(keepends=True)
        raw[1] = b"}}garbage{{\n"  # first entry, not the final line
        path.write_bytes(b"".join(raw))
        with pytest.raises(PersistenceError):
            WriteAheadLog(path).open()

    def test_reset_truncates_to_header(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.open()
        wal.append({"t": "window", "window": 0})
        wal.reset()
        wal.append({"t": "window", "window": 7})
        wal.close()
        wal = WriteAheadLog(path)
        assert [e["window"] for e in wal.open()] == [7]
        wal.close()

    def test_foreign_or_future_header_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_bytes(b'{"magic":"other-log","version":1}\n')
        with pytest.raises(PersistenceError):
            WriteAheadLog(path).open()
        path.write_bytes(
            json.dumps(
                {"magic": WAL_MAGIC, "version": FORMAT_VERSION + 1}
            ).encode()
            + b"\n"
        )
        with pytest.raises(PersistenceError):
            WriteAheadLog(path).open()

    def test_torn_header_restarts_the_file(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_bytes(b'{"magic":"trips-')  # died writing the header
        wal = WriteAheadLog(path)
        assert wal.open() == []
        wal.append({"t": "window", "window": 0})
        wal.close()
        wal = WriteAheadLog(path)
        assert [e["window"] for e in wal.open()] == [0]
        wal.close()


# ----------------------------------------------------------------------
# The journal: snapshot + WAL
# ----------------------------------------------------------------------
class TestJournal:
    def test_load_without_snapshot(self, tmp_path):
        journal = DurableStateJournal(tmp_path / "state")
        journal.open()
        journal.append_window(0, {"venues": []})
        journal.close()
        # load() surfaces what open() replayed — the recovery flow.
        journal = DurableStateJournal(tmp_path / "state")
        journal.open()
        snapshot, entries = journal.load()
        assert snapshot is None
        assert [e["window"] for e in entries] == [0]
        journal.close()

    def test_snapshot_truncates_and_filters(self, tmp_path):
        journal = DurableStateJournal(tmp_path / "state")
        journal.open()
        journal.append_window(0, {"venues": []})
        journal.append_window(1, {"venues": []})
        journal.write_snapshot(2, {"body": True})
        journal.append_window(2, {"venues": []})
        journal.close()
        journal = DurableStateJournal(tmp_path / "state")
        journal.open()
        snapshot, entries = journal.load()
        assert snapshot["windows"] == 2
        assert snapshot["magic"] == SNAPSHOT_MAGIC
        assert [e["window"] for e in entries] == [2]
        journal.close()

    def test_crash_between_snapshot_rename_and_wal_reset(
        self, tmp_path, monkeypatch
    ):
        """The one non-atomic seam in the checkpoint: the snapshot is
        renamed into place but the process dies before the WAL truncate.
        The stale entries it leaves behind are all covered by the
        snapshot and must be filtered, not replayed twice."""
        journal = DurableStateJournal(tmp_path / "state")
        journal.open()
        journal.append_window(0, {"venues": []})
        journal.append_window(1, {"venues": []})
        monkeypatch.setattr(journal.wal, "reset", lambda: None)
        journal.write_snapshot(2, {"body": True})
        journal.close()
        journal = DurableStateJournal(tmp_path / "state")
        journal.open()
        snapshot, entries = journal.load()
        assert snapshot["windows"] == 2
        assert entries == []
        journal.close()

    def test_corrupt_snapshot_raises(self, tmp_path):
        state = tmp_path / "state"
        journal = DurableStateJournal(state)
        journal.open()
        journal.close()
        (state / "snapshot.json").write_bytes(b"{broken")
        journal.open()
        with pytest.raises(PersistenceError):
            journal.load()
        (state / "snapshot.json").write_bytes(
            json.dumps({"magic": "wrong", "version": 1, "windows": 0}).encode()
        )
        with pytest.raises(PersistenceError):
            journal.load()
        journal.close()

    def test_load_requires_open(self, tmp_path):
        journal = DurableStateJournal(tmp_path / "state")
        with pytest.raises(PersistenceError):
            journal.load()


# ----------------------------------------------------------------------
# Crash recovery: the tentpole property
# ----------------------------------------------------------------------
RETENTIONS = ["unbounded", "window:2", "decay:3"]


def feed_windows():
    return list(
        windowed_records(
            RecordStream(iter(shop_records("east:"))), WINDOW_SECONDS
        )
    )


def make_service(retention, state_dir=None, snapshot_interval=3):
    return LiveTranslationService(
        {"east": Translator(make_two_shop_dsm())},
        EngineConfig(chunk_size=2),
        LiveConfig(
            window_seconds=WINDOW_SECONDS,
            snapshot_interval=snapshot_interval,
        ),
        retention=retention,
        state_dir=state_dir,
    )


@pytest.fixture(scope="module")
def uninterrupted():
    """Reference run per retention: stats, knowledge and finalize()."""
    runs = {}
    for retention in RETENTIONS:
        service = make_service(retention)
        with service:
            for window in feed_windows():
                service.process_window(window, "east")
            finalized = service.finalize()
            store = service.store("east")
            runs[retention] = {
                "windows": service.stats.windows,
                "records": service.stats.records,
                "semantics": service.stats.semantics,
                "partial": store.to_partial(),
                "state": store_state(store),
                "results": finalized["east"].results,
                "knowledge": finalized["east"].knowledge,
            }
    return runs


class TestCrashRecovery:
    @settings(max_examples=15, deadline=None)
    @given(
        kill_at=st.integers(min_value=0, max_value=len(feed_windows())),
        retention=st.sampled_from(RETENTIONS),
        snapshot_interval=st.integers(min_value=1, max_value=5),
    )
    def test_kill_at_any_window_boundary_recovers_exactly(
        self, tmp_path_factory, uninterrupted, kill_at, retention,
        snapshot_interval,
    ):
        """Kill after any number of windows, under any retention and
        any checkpoint cadence: the recovered service finishes the feed
        to a bit-for-bit identical finalize()."""
        state_dir = tmp_path_factory.mktemp("crash")
        windows = feed_windows()
        crashed = make_service(
            retention, state_dir, snapshot_interval=snapshot_interval
        )
        crashed.open()
        for window in windows[:kill_at]:
            crashed.process_window(window, "east")
        # No close(): the process is gone.  Only the flushed journal
        # survives.
        del crashed

        recovered = make_service(
            retention, state_dir, snapshot_interval=snapshot_interval
        )
        with recovered:
            assert recovered.stats.windows == kill_at
            for window in windows[kill_at:]:
                recovered.process_window(window, "east")
            reference = uninterrupted[retention]
            assert recovered.stats.windows == reference["windows"]
            assert recovered.stats.records == reference["records"]
            assert recovered.stats.semantics == reference["semantics"]
            store = recovered.store("east")
            assert store.to_partial() == reference["partial"]
            # The full store state — ring, counters, watermark — matches
            # the uninterrupted run's wire encoding exactly.
            assert store_state(store) == reference["state"]
            finalized = recovered.finalize()
            assert finalized["east"].results == reference["results"]
            assert finalized["east"].knowledge == reference["knowledge"]

    def test_double_crash_still_recovers(self, tmp_path, uninterrupted):
        """Crash, recover, crash again mid-feed, recover again."""
        windows = feed_windows()
        state_dir = tmp_path / "state"
        first = make_service("window:2", state_dir)
        first.open()
        for window in windows[:2]:
            first.process_window(window, "east")
        del first
        second = make_service("window:2", state_dir)
        second.open()
        for window in windows[2:4]:
            second.process_window(window, "east")
        del second
        third = make_service("window:2", state_dir)
        with third:
            assert third.stats.windows == 4
            for window in windows[4:]:
                third.process_window(window, "east")
            reference = uninterrupted["window:2"]
            assert store_state(third.store("east")) == reference["state"]
            assert third.finalize()["east"].results == reference["results"]

    def test_close_and_reopen_does_not_double_replay(
        self, tmp_path, uninterrupted
    ):
        windows = feed_windows()
        service = make_service("unbounded", tmp_path / "state")
        with service:
            for window in windows[:5]:
                service.process_window(window, "east")
        # Same instance, reopened: in-memory state already holds the
        # journaled windows, so nothing is replayed on top of it.
        with service:
            assert service.stats.windows == 5
            for window in windows[5:]:
                service.process_window(window, "east")
            reference = uninterrupted["unbounded"]
            assert service.finalize()["east"].results == reference["results"]

    def test_results_dropped_mode_recovers_without_batches(self, tmp_path):
        """With ``retain_results=False`` nothing journals raw batches:
        recovery is O(snapshot + WAL tail) and still restores knowledge
        exactly (there is nothing to finalize)."""
        windows = feed_windows()

        def make(state_dir):
            return LiveTranslationService(
                {"east": Translator(make_two_shop_dsm())},
                EngineConfig(chunk_size=2),
                LiveConfig(
                    window_seconds=WINDOW_SECONDS,
                    retain_results=False,
                    snapshot_interval=4,
                ),
                state_dir=state_dir,
            )

        reference = make(None)
        with reference:
            for window in windows:
                reference.process_window(window, "east")
            reference_state = store_state(reference.store("east"))

        crashed = make(tmp_path / "state")
        crashed.open()
        for window in windows[:6]:
            crashed.process_window(window, "east")
        del crashed
        recovered = make(tmp_path / "state")
        with recovered:
            assert recovered.results("east") == []
            for window in windows[6:]:
                recovered.process_window(window, "east")
            assert store_state(recovered.store("east")) == reference_state


# ----------------------------------------------------------------------
# Recovery refuses to lie
# ----------------------------------------------------------------------
class TestRecoveryValidation:
    def test_retention_mismatch_is_refused(self, tmp_path):
        state_dir = tmp_path / "state"
        service = make_service("window:2", state_dir)
        with service:
            for window in feed_windows()[:3]:
                service.process_window(window, "east")
        mismatched = make_service("decay:3", state_dir)
        with pytest.raises(PersistenceError):
            mismatched.open()

    def test_unknown_venue_in_state_is_refused(self, tmp_path):
        state_dir = tmp_path / "state"
        service = make_service("unbounded", state_dir)
        with service:
            for window in feed_windows()[:3]:
                service.process_window(window, "east")
            service.checkpoint()
        stranger = LiveTranslationService(
            {"west": Translator(make_two_shop_dsm())},
            EngineConfig(chunk_size=2),
            LiveConfig(window_seconds=WINDOW_SECONDS),
            state_dir=state_dir,
        )
        with pytest.raises(PersistenceError):
            stranger.open()

    def test_window_gap_in_wal_is_refused(self, tmp_path):
        state_dir = tmp_path / "state"
        # A wide snapshot interval keeps all three windows in the WAL.
        service = make_service("unbounded", state_dir, snapshot_interval=10)
        with service:
            for window in feed_windows()[:3]:
                service.process_window(window, "east")
        wal_path = state_dir / "wal.jsonl"
        lines = wal_path.read_bytes().splitlines(keepends=True)
        del lines[2]  # drop the middle window: 0, _, 2
        wal_path.write_bytes(b"".join(lines))
        with pytest.raises(PersistenceError):
            make_service("unbounded", state_dir, snapshot_interval=10).open()

    def test_tampered_retirement_log_is_refused(self, tmp_path):
        state_dir = tmp_path / "state"
        service = make_service("window:2", state_dir)
        with service:
            for window in feed_windows()[:5]:
                service.process_window(window, "east")
        wal_path = state_dir / "wal.jsonl"
        lines = wal_path.read_bytes().splitlines(keepends=True)
        entry = json.loads(lines[-1])
        for venue in entry["venues"]:
            venue["retired"] = [99]
        lines[-1] = json.dumps(entry, separators=(",", ":")).encode() + b"\n"
        wal_path.write_bytes(b"".join(lines))
        with pytest.raises(PersistenceError):
            make_service("window:2", state_dir).open()


# ----------------------------------------------------------------------
# Sharded cluster recovery
# ----------------------------------------------------------------------
class TestShardedRecovery:
    def make_cluster(self, state_dir=None, shards=2):
        from repro.distributed import ShardedIngestService

        return ShardedIngestService(
            {"east": Translator(make_two_shop_dsm())},
            shards=shards,
            engine_config=EngineConfig(chunk_size=2),
            live_config=LiveConfig(
                window_seconds=WINDOW_SECONDS, snapshot_interval=3
            ),
            exchange_interval=2,
            state_dir=state_dir,
        )

    @pytest.mark.parametrize("kill_at", [0, 3, 6])
    def test_cluster_kill_and_recover_bit_for_bit(self, tmp_path, kill_at):
        windows = feed_windows()
        reference = self.make_cluster()
        with reference:
            for window in windows:
                reference.process_window(window, "east")
            reference_final = reference.finalize()
            reference_stats = reference.stats
        reference_merged = reference.merged_knowledge("east")

        crashed = self.make_cluster(tmp_path / "cluster", shards=2)
        crashed.open()
        for window in windows[:kill_at]:
            crashed.process_window(window, "east")
        del crashed

        recovered = self.make_cluster(tmp_path / "cluster", shards=2)
        with recovered:
            assert recovered.stats.windows == kill_at
            for window in windows[kill_at:]:
                recovered.process_window(window, "east")
            assert recovered.stats.windows == reference_stats.windows
            assert recovered.stats.records == reference_stats.records
            assert recovered.stats.semantics == reference_stats.semantics
            merged = recovered.merged_knowledge("east")
            assert merged.to_partial() == reference_merged.to_partial()
            finalized = recovered.finalize()
            assert (
                finalized["east"].results == reference_final["east"].results
            )

    def test_mid_window_crash_is_detected(self, tmp_path):
        """A shard that journaled more windows than the cluster counter
        means the crash was not at a cluster-window boundary — recovery
        refuses instead of silently double-feeding."""
        windows = feed_windows()
        cluster = self.make_cluster(tmp_path / "cluster")
        with cluster:
            for window in windows[:4]:
                cluster.process_window(window, "east")
        # Shards may legitimately lag the cluster counter (a shard skips
        # windows whose partition routed it no records), so wind the
        # counter back below what the shards durably journaled.
        journaled = max(
            json.loads(
                (tmp_path / "cluster" / f"shard-{i}" / "snapshot.json")
                .read_bytes()
            )["windows"]
            for i in range(2)
        )
        cluster_json = tmp_path / "cluster" / "cluster.json"
        payload = json.loads(cluster_json.read_bytes())
        payload["windows"] = journaled - 1
        cluster_json.write_text(json.dumps(payload))
        with pytest.raises(PersistenceError):
            self.make_cluster(tmp_path / "cluster").open()
