"""RecordStream windowing: the live service's ingestion substrate.

Direct coverage of ``take``/``take_window``/``windowed_sequences``/
``sequence_stream`` edge cases — empty windows, out-of-order timestamps,
single-record devices, count bounds, push-back accounting — which the
engine/live tests only exercise indirectly.
"""

from __future__ import annotations

import pytest

from repro.errors import DataSourceError
from repro.geometry import Point
from repro.positioning import (
    PositioningSequence,
    RawPositioningRecord,
    RecordStream,
    sequence_stream,
    windowed_records,
    windowed_sequences,
)


def record(timestamp: float, device: str = "dev") -> RawPositioningRecord:
    return RawPositioningRecord(timestamp, device, Point(1.0, 1.0, 1))


def feed(*timestamps_and_devices) -> RecordStream:
    records = [
        record(ts, dev) if isinstance(dev, str) else record(ts)
        for ts, dev in timestamps_and_devices
    ]
    return RecordStream(iter(records))


# ----------------------------------------------------------------------
# take / take_window
# ----------------------------------------------------------------------
def test_take_bounds_and_exhaustion():
    stream = feed((0, "a"), (1, "a"), (2, "a"))
    assert len(stream.take(2)) == 2
    assert len(stream.take(5)) == 1  # fewer when the stream ends
    assert stream.take(5) == []
    with pytest.raises(DataSourceError):
        stream.take(-1)


def test_take_window_cuts_on_time():
    stream = feed((0, "a"), (5, "a"), (11, "a"), (12, "a"))
    first = stream.take_window(10.0)
    assert [r.timestamp for r in first] == [0, 5]
    second = stream.take_window(10.0)
    assert [r.timestamp for r in second] == [11, 12]
    assert stream.take_window(10.0) == []


def test_take_window_rejects_bad_bounds():
    stream = feed((0, "a"))
    with pytest.raises(DataSourceError):
        stream.take_window(0.0)
    with pytest.raises(DataSourceError):
        stream.take_window(10.0, max_records=0)


def test_take_window_count_bound_closes_first():
    """A traffic burst cannot grow one window past max_records."""
    stream = feed(*((t, "a") for t in range(10)))
    first = stream.take_window(100.0, max_records=4)
    assert [r.timestamp for r in first] == [0, 1, 2, 3]
    second = stream.take_window(100.0, max_records=4)
    assert [r.timestamp for r in second] == [4, 5, 6, 7]
    assert len(stream.take_window(100.0, max_records=4)) == 2


def test_take_window_pushback_does_not_lose_or_recount():
    """The record that closed a window is the next window's first, and
    ``consumed`` counts it exactly once."""
    stream = feed((0, "a"), (20, "a"), (21, "a"))
    first = stream.take_window(10.0)
    assert [r.timestamp for r in first] == [0]
    assert stream.consumed == 1  # the pushed-back record is not "handed out"
    second = stream.take_window(10.0)
    assert [r.timestamp for r in second] == [20, 21]
    assert stream.consumed == 3


def test_take_window_out_of_order_timestamps_stay_in_window():
    """A late (out-of-order) record never closes the window: the cut
    compares against the window *start*, so a timestamp below it simply
    lands in the current window."""
    stream = feed((100, "a"), (95, "a"), (104, "a"), (120, "a"))
    window = stream.take_window(10.0)
    assert [r.timestamp for r in window] == [100, 95, 104]
    assert [r.timestamp for r in stream.take_window(10.0)] == [120]


def test_empty_stream_yields_no_windows():
    stream = RecordStream(iter([]))
    assert stream.take_window(10.0) == []
    assert list(windowed_records(stream, 10.0)) == []
    assert list(windowed_sequences(RecordStream(iter([])), 10.0)) == []
    assert list(sequence_stream(RecordStream(iter([])), 10.0)) == []


# ----------------------------------------------------------------------
# windowed_records / windowed_sequences / sequence_stream
# ----------------------------------------------------------------------
def test_windowed_records_honours_both_bounds():
    stream = feed(*((t, "a") for t in (0, 1, 2, 30, 31, 32, 33)))
    windows = list(windowed_records(stream, 10.0, max_records=3))
    assert [[r.timestamp for r in w] for w in windows] == [
        [0, 1, 2],
        [30, 31, 32],
        [33],
    ]


def test_windowed_sequences_groups_per_device_per_window():
    stream = feed((0, "b"), (1, "a"), (2, "b"), (50, "a"))
    windows = list(windowed_sequences(stream, 10.0))
    assert len(windows) == 2
    first, second = windows
    # Device order inside a window is sorted (deterministic batches).
    assert [s.device_id for s in first] == ["a", "b"]
    assert len(first[1]) == 2
    # A device spanning two windows yields one sequence per window.
    assert [s.device_id for s in second] == ["a"]
    assert len(second[0]) == 1  # single-record device window


def test_windowed_sequences_single_record_device():
    stream = feed((0, "solo"))
    windows = list(windowed_sequences(stream, 10.0))
    assert len(windows) == 1
    (sequence,) = windows[0]
    assert isinstance(sequence, PositioningSequence)
    assert sequence.device_id == "solo"
    assert len(sequence) == 1
    assert sequence.duration == 0.0


def test_windowed_sequences_on_window_callback():
    stream = feed((0, "a"), (50, "a"))
    seen: list[int] = []
    windows = list(
        windowed_sequences(stream, 10.0, on_window=lambda w: seen.append(len(w)))
    )
    assert seen == [1, 1]
    assert len(windows) == 2


def test_sequence_stream_flattens_lazily():
    pulled: list[float] = []

    def source():
        for t in (0.0, 1.0, 50.0, 51.0):
            pulled.append(t)
            yield record(t)

    stream = RecordStream(source())
    sequences = sequence_stream(stream, 10.0)
    first = next(sequences)
    assert first.device_id == "dev"
    # Only the first window (plus the closing record) has been pulled.
    assert pulled == [0.0, 1.0, 50.0]
    rest = list(sequences)
    assert len(rest) == 1
    assert pulled == [0.0, 1.0, 50.0, 51.0]


def test_sequence_stream_respects_max_records():
    stream = feed(*((t, "a") for t in range(6)))
    sequences = list(sequence_stream(stream, 100.0, max_records=2))
    assert [len(s) for s in sequences] == [2, 2, 2]


def test_iter_records_and_drain():
    stream = feed((0, "a"), (1, "a"), (2, "a"))
    stream.take(1)
    assert [r.timestamp for r in stream.drain()] == [1, 2]
    assert stream.consumed == 3
