"""Unit tests for the shape-generic predicates."""

import pytest

from repro.errors import GeometryError
from repro.geometry import (
    Circle,
    Point,
    Polygon,
    Polyline,
    Segment,
    as_polygon,
    shape_anchor,
    shape_area,
    shape_bounds,
    shape_contains,
    shape_distance_to_point,
    shape_floor,
    shapes_intersect,
)

SQUARE = Polygon.rectangle(0, 0, 10, 10)
CIRCLE = Circle(Point(20, 5), 3.0)
WALL = Polyline([Point(0, 15), Point(30, 15)])
DOOR = Point(5, 10)
SEG = Segment(Point(0, 0), Point(10, 10))


class TestBasics:
    def test_floor_dispatch(self):
        assert shape_floor(SQUARE) == 1
        assert shape_floor(DOOR) == 1
        assert shape_floor(Point(0, 0, 3)) == 3

    def test_bounds_dispatch(self):
        assert shape_bounds(DOOR).area == 0.0
        assert shape_bounds(SEG).diagonal == pytest.approx(200**0.5)
        assert shape_bounds(CIRCLE).width == 6.0

    def test_anchor(self):
        assert shape_anchor(SQUARE).almost_equals(Point(5, 5))
        assert shape_anchor(CIRCLE) == Point(20, 5)
        assert shape_anchor(SEG).almost_equals(Point(5, 5))
        assert shape_anchor(WALL).almost_equals(Point(15, 15))
        assert shape_anchor(DOOR) == DOOR

    def test_area(self):
        assert shape_area(SQUARE) == 100.0
        assert shape_area(CIRCLE) == pytest.approx(3.0**2 * 3.14159, rel=1e-3)
        assert shape_area(WALL) == 0.0
        assert shape_area(DOOR) == 0.0

    def test_contains(self):
        assert shape_contains(SQUARE, Point(5, 5))
        assert shape_contains(CIRCLE, Point(21, 5))
        assert shape_contains(SEG, Point(5, 5))
        assert shape_contains(WALL, Point(15, 15))
        assert shape_contains(DOOR, Point(5, 10))
        assert not shape_contains(DOOR, Point(5, 11))

    def test_distance(self):
        assert shape_distance_to_point(SQUARE, Point(5, 5)) == 0.0
        assert shape_distance_to_point(SQUARE, Point(15, 5)) == 5.0
        assert shape_distance_to_point(DOOR, Point(5, 13)) == 3.0

    def test_distance_cross_floor_raises(self):
        with pytest.raises(GeometryError):
            shape_distance_to_point(SQUARE, Point(5, 5, 2))

    def test_as_polygon(self):
        assert as_polygon(SQUARE) is SQUARE
        assert as_polygon(CIRCLE).area == pytest.approx(CIRCLE.area, rel=0.05)
        with pytest.raises(GeometryError):
            as_polygon(WALL)


class TestShapesIntersect:
    def test_polygon_polygon(self):
        assert shapes_intersect(SQUARE, Polygon.rectangle(5, 5, 15, 15))
        assert not shapes_intersect(SQUARE, Polygon.rectangle(50, 50, 60, 60))

    def test_circle_polygon(self):
        assert shapes_intersect(Circle(Point(10, 5), 2.0), SQUARE)
        assert not shapes_intersect(Circle(Point(20, 5), 3.0), SQUARE)

    def test_circle_circle(self):
        assert shapes_intersect(CIRCLE, Circle(Point(25, 5), 3.0))

    def test_segment_polygon(self):
        assert shapes_intersect(Segment(Point(-5, 5), Point(5, 5)), SQUARE)
        assert shapes_intersect(Segment(Point(2, 2), Point(3, 3)), SQUARE)
        assert not shapes_intersect(Segment(Point(-5, 50), Point(5, 50)), SQUARE)

    def test_polyline_polygon(self):
        crossing = Polyline([Point(5, -5), Point(5, 20)])
        assert shapes_intersect(crossing, SQUARE)
        assert not shapes_intersect(WALL, SQUARE)

    def test_point_any(self):
        assert shapes_intersect(Point(5, 5), SQUARE)
        assert shapes_intersect(Point(20, 5), CIRCLE)
        assert not shapes_intersect(Point(50, 50), SQUARE)

    def test_cross_floor_never_intersects(self):
        assert not shapes_intersect(SQUARE, Polygon.rectangle(0, 0, 10, 10, floor=2))

    def test_order_independent(self):
        pairs = [
            (SQUARE, Circle(Point(10, 5), 2.0)),
            (SEG, SQUARE),
            (DOOR, SQUARE),
        ]
        for a, b in pairs:
            assert shapes_intersect(a, b) == shapes_intersect(b, a)
