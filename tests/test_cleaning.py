"""Unit tests for the cleaning layer: detection, floor fix, interpolation."""

import pytest

from repro.core.cleaning import (
    CleaningConfig,
    RawDataCleaner,
    SpeedValidator,
)
from repro.errors import CleaningError
from repro.geometry import Point
from repro.positioning import (
    PositioningSequence,
    RawPositioningRecord,
    inject_floor_errors,
    inject_gaussian_noise,
    inject_outliers,
)

from .conftest import walk_sequence


def rec(t, x, y, floor=1, device="dev"):
    return RawPositioningRecord(t, device, Point(x, y, floor))


class TestSpeedValidator:
    def test_feasible_walk(self, two_shop_shared):
        validator = SpeedValidator(two_shop_shared.topology)
        assert validator.transition_feasible(rec(0, 1, 5), rec(5, 6, 5))

    def test_too_fast_straight_line(self, two_shop_shared):
        validator = SpeedValidator(two_shop_shared.topology)
        assert not validator.transition_feasible(rec(0, 1, 5), rec(1, 25, 5))

    def test_wall_detour_detection(self, two_shop_shared):
        # Adidas interior to Nike interior: 10 m apart straight-line, but
        # the walking path through doors is ~20 m.  4 seconds is enough at
        # straight-line speed (2.5 m/s) yet infeasible indoors.
        validator = SpeedValidator(two_shop_shared.topology)
        assert not validator.transition_feasible(
            rec(0, 5, 15), rec(4.5, 15, 15)
        )
        # The same pair with enough time is fine.
        assert validator.transition_feasible(rec(0, 5, 15), rec(20, 15, 15))

    def test_indoor_distance_exceeds_euclidean(self, two_shop_shared):
        validator = SpeedValidator(two_shop_shared.topology)
        indoor = validator.indoor_distance(rec(0, 5, 15), rec(10, 15, 15))
        assert indoor > 10.0

    def test_simultaneous_fixes(self, two_shop_shared):
        validator = SpeedValidator(two_shop_shared.topology)
        assert validator.transition_feasible(rec(5, 1, 5), rec(5, 1, 5))
        assert not validator.transition_feasible(rec(5, 1, 5), rec(5, 9, 5))

    def test_find_violations(self, two_shop_shared):
        # Only the jump into record 2 violates; the pair (2, 3) is slow.
        validator = SpeedValidator(two_shop_shared.topology)
        records = [rec(0, 1, 5), rec(5, 2, 5), rec(6, 25, 5), rec(30, 26, 5)]
        violations = validator.find_violations(records)
        assert [v.to_index for v in violations] == [2]
        assert violations[0].speed > 2.5

    def test_stair_transition_feasible(self, mall3):
        # Consecutive fixes on different floors at the staircase are a
        # person mid-stairs, not an error.
        validator = SpeedValidator(mall3.topology)
        stair = mall3.vertical_connectors(1)[0].anchor
        below = rec(0.0, stair.x, stair.y, floor=1)
        above = rec(2.0, stair.x, stair.y, floor=2)
        assert validator.transition_feasible(below, above)

    def test_floor_error_far_from_stairs_detected(self, mall3):
        # A wrong-floor fix in the middle of a shop pays long horizontal
        # detour legs to any staircase and is flagged.
        validator = SpeedValidator(mall3.topology)
        inside_shop = rec(0.0, 8.0, 7.0, floor=1)
        wrong_floor = rec(2.0, 8.0, 7.0, floor=2)
        assert not validator.transition_feasible(inside_shop, wrong_floor)

    def test_bad_max_speed(self, two_shop_shared):
        with pytest.raises(ValueError):
            SpeedValidator(two_shop_shared.topology, max_speed=0)


class TestFloorCorrection:
    def test_wrong_floor_fixed(self, two_shop_shared):
        cleaner = RawDataCleaner(two_shop_shared.topology)
        records = [rec(i * 5.0, 1 + i, 5) for i in range(10)]
        # Record 4 reports a bogus floor (no stairs at all in this DSM).
        records[4] = rec(20.0, 5, 5, floor=2)
        result = cleaner.clean(PositioningSequence("dev", records))
        assert result.report.floor_corrected == [4]
        assert result.cleaned[4].floor == 1
        assert result.cleaned[4].location.xy == (5, 5)

    def test_all_records_valid_untouched(self, two_shop_shared):
        cleaner = RawDataCleaner(two_shop_shared.topology)
        sequence = walk_sequence(points=[(1 + i, 5, 1) for i in range(10)])
        result = cleaner.clean(sequence)
        assert result.report.invalid_count == 0
        assert result.cleaned.records == sequence.records

    def test_floor_correction_disabled(self, two_shop_shared):
        config = CleaningConfig(enable_floor_correction=False)
        cleaner = RawDataCleaner(two_shop_shared.topology, config)
        records = [rec(i * 5.0, 1 + i, 5) for i in range(10)]
        records[4] = rec(20.0, 5, 5, floor=2)
        result = cleaner.clean(PositioningSequence("dev", records))
        assert result.report.floor_corrected == []
        # Interpolation still repairs it (back onto floor 1).
        assert result.cleaned[4].floor == 1


class TestInterpolation:
    def test_outlier_pulled_back(self, two_shop_shared):
        cleaner = RawDataCleaner(two_shop_shared.topology)
        records = [rec(i * 5.0, 1 + i, 5) for i in range(10)]
        records[5] = rec(25.0, 300, 300)  # teleport far outside
        result = cleaner.clean(PositioningSequence("dev", records))
        assert 5 in result.report.interpolated
        repaired = result.cleaned[5].location
        # Repaired fix lies between its neighbors, inside the hall.
        assert 5 <= repaired.x <= 8
        assert two_shop_shared.partition_at(repaired) is not None

    def test_interpolation_respects_walls(self, two_shop_shared):
        cleaner = RawDataCleaner(two_shop_shared.topology)
        # Dwell in Adidas, outlier, then dwell in Nike: the repaired point
        # must lie on the door path, never inside the wall between shops.
        records = (
            [rec(i * 5.0, 5, 15) for i in range(5)]
            + [rec(25.0, 200, 200)]
            + [rec(30.0 + i * 5.0, 15, 15) for i in range(5)]
        )
        result = cleaner.clean(PositioningSequence("dev", records))
        repaired = result.cleaned[5].location
        partition = two_shop_shared.partition_at(repaired)
        assert partition is not None

    def test_leading_outlier_repaired(self, two_shop_shared):
        cleaner = RawDataCleaner(two_shop_shared.topology)
        records = [rec(0.0, 300, 300)] + [
            rec(5.0 + i * 5.0, 1 + i, 5) for i in range(6)
        ]
        result = cleaner.clean(PositioningSequence("dev", records))
        assert 0 in result.report.invalid_indexes
        assert result.cleaned[0].location.xy == (1, 5)

    def test_interpolation_disabled_keeps_outlier(self, two_shop_shared):
        config = CleaningConfig(
            enable_floor_correction=False, enable_interpolation=False
        )
        cleaner = RawDataCleaner(two_shop_shared.topology, config)
        records = [rec(i * 5.0, 1 + i, 5) for i in range(6)]
        records[3] = rec(15.0, 300, 300)
        result = cleaner.clean(PositioningSequence("dev", records))
        assert result.report.unrepaired == [3]
        assert result.cleaned[3].location.xy == (300, 300)

    def test_short_sequence_passthrough(self, two_shop_shared):
        cleaner = RawDataCleaner(two_shop_shared.topology)
        sequence = PositioningSequence("dev", [rec(0, 1, 5)])
        result = cleaner.clean(sequence)
        assert result.cleaned is sequence


class TestCleaningQuality:
    """Injected-error recovery on realistic simulated data."""

    def test_recovers_injected_floor_errors(self, mall3, simulated):
        from repro.core import score_positions

        corrupted, report = inject_floor_errors(
            simulated.ground_truth, 0.10, mall3.floor_numbers, seed=5
        )
        cleaner = RawDataCleaner(mall3.topology)
        result = cleaner.clean(corrupted)
        before = score_positions(corrupted, simulated.ground_truth)
        after = score_positions(result.cleaned, simulated.ground_truth)
        assert after.floor_accuracy > before.floor_accuracy
        assert after.floor_accuracy >= 0.97

    def test_reduces_outlier_rmse(self, mall3, simulated):
        from repro.core import score_positions

        noisy = inject_gaussian_noise(simulated.ground_truth, 1.0, seed=1)
        corrupted, _ = inject_outliers(noisy, 0.05, magnitude=30, seed=2)
        cleaner = RawDataCleaner(mall3.topology)
        result = cleaner.clean(corrupted)
        before = score_positions(corrupted, simulated.ground_truth)
        after = score_positions(result.cleaned, simulated.ground_truth)
        assert after.rmse < before.rmse

    def test_report_arithmetic(self, two_shop_shared):
        cleaner = RawDataCleaner(two_shop_shared.topology)
        records = [rec(i * 5.0, 1 + i, 5) for i in range(10)]
        records[4] = rec(20.0, 300, 300)
        result = cleaner.clean(PositioningSequence("dev", records))
        report = result.report
        assert report.total_records == 10
        assert report.invalid_rate == pytest.approx(0.1)
        assert report.repaired_count == report.invalid_count
        assert "invalid" in str(report)

    def test_config_validation(self):
        with pytest.raises(CleaningError):
            CleaningConfig(max_speed=0)
