"""Property tests of the PartialKnowledge merge algebra (hypothesis).

The sharded knowledge build is only sound if the shard merge is a real
commutative monoid and folding shards reproduces the serial build *bit
for bit* — including the float dwell totals, which accumulate through
``ExactSum`` precisely so that regrouping additions never changes the
rounded result.  Durations here are adversarial floats on purpose: plain
``+=`` accumulation fails these properties.
"""

from __future__ import annotations

import math
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.complementing import (
    ExactSum,
    MobilityKnowledge,
    PartialKnowledge,
    RegionStats,
    merge_partials,
)
from repro.core.semantics import (
    EVENT_PASS_BY,
    EVENT_STAY,
    MobilitySemantic,
    MobilitySemanticsSequence,
)
from repro.errors import InferenceError
from repro.timeutil import TimeRange

REGIONS = ["r-atrium", "r-cafe", "r-gym", "r-shop"]
#: Sequences may reference a region outside the vocabulary; both build
#: paths must ignore it identically.
SEMANTIC_REGIONS = REGIONS + ["r-foreign"]

durations = st.floats(
    min_value=0.1, max_value=7200.0, allow_nan=False, allow_infinity=False
)
#: Gaps on both sides of the 600 s transition cutoff, so shardings must
#: also agree on which pairs count as transitions.
gaps = st.one_of(
    st.floats(min_value=0.0, max_value=400.0),
    st.floats(min_value=601.0, max_value=2000.0),
)


@st.composite
def annotated_sequences(draw):
    """A random annotated semantics sequence over the small vocabulary."""
    count = draw(st.integers(min_value=0, max_value=6))
    clock = draw(st.floats(min_value=0.0, max_value=1e6))
    semantics = []
    for _ in range(count):
        clock += draw(gaps)
        duration = draw(durations)
        region = draw(st.sampled_from(SEMANTIC_REGIONS))
        event = draw(st.sampled_from([EVENT_STAY, EVENT_PASS_BY]))
        semantics.append(
            MobilitySemantic(
                event, region, region, TimeRange(clock, clock + duration)
            )
        )
        clock += duration
    return MobilitySemanticsSequence("dev", semantics)


corpora = st.lists(annotated_sequences(), max_size=6)
#: A random sharding: a list of shards, each a list of sequences (empty
#: shards included — a chunk whose sequences all annotate to nothing
#: still produces a partial).
shardings = st.lists(
    st.lists(annotated_sequences(), max_size=3), max_size=4
)


def partial_of(corpus) -> PartialKnowledge:
    return PartialKnowledge.from_sequences(corpus, REGIONS)


# ----------------------------------------------------------------------
# The merge monoid
# ----------------------------------------------------------------------
class TestMergeAlgebra:
    @settings(max_examples=40, deadline=None)
    @given(corpora, corpora)
    def test_merge_commutative(self, left, right):
        a, b = partial_of(left), partial_of(right)
        assert a.merge(b) == b.merge(a)

    @settings(max_examples=40, deadline=None)
    @given(corpora, corpora, corpora)
    def test_merge_associative(self, one, two, three):
        a, b, c = partial_of(one), partial_of(two), partial_of(three)
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @settings(max_examples=25, deadline=None)
    @given(corpora)
    def test_empty_shard_is_identity(self, corpus):
        a = partial_of(corpus)
        empty = PartialKnowledge(regions=list(REGIONS))
        assert a.merge(empty) == a
        assert empty.merge(a) == a

    @settings(max_examples=25, deadline=None)
    @given(corpora, corpora, corpora)
    def test_merge_partials_equals_pairwise(self, one, two, three):
        a, b, c = partial_of(one), partial_of(two), partial_of(three)
        assert merge_partials(a, b, c) == a.merge(b).merge(c)

    @settings(max_examples=25, deadline=None)
    @given(corpora, corpora)
    def test_merge_does_not_mutate_operands(self, left, right):
        a, b = partial_of(left), partial_of(right)
        a_before, b_before = partial_of(left), partial_of(right)
        a.merge(b)
        assert a == a_before
        assert b == b_before

    def test_merge_partials_requires_a_shard(self):
        with pytest.raises(InferenceError):
            merge_partials()

    def test_merge_rejects_vocabulary_mismatch(self):
        a = PartialKnowledge(regions=list(REGIONS))
        b = PartialKnowledge(regions=REGIONS + ["r-extra"])
        with pytest.raises(InferenceError):
            a.merge(b)

    def test_partial_requires_vocabulary(self):
        with pytest.raises(InferenceError):
            PartialKnowledge(regions=[])


# ----------------------------------------------------------------------
# Sharded build == serial build
# ----------------------------------------------------------------------
class TestShardedEqualsSerial:
    @settings(max_examples=40, deadline=None)
    @given(shardings, st.floats(min_value=0.1, max_value=5.0))
    def test_from_partials_equals_from_sequences(self, shards, smoothing):
        concat = [sequence for shard in shards for sequence in shard]
        reference = MobilityKnowledge.from_sequences(
            concat, REGIONS, smoothing=smoothing
        )
        merged = MobilityKnowledge.from_partials(
            [partial_of(shard) for shard in shards],
            regions=REGIONS,
            smoothing=smoothing,
        )
        assert merged == reference

    @settings(max_examples=25, deadline=None)
    @given(shardings)
    def test_transition_probability_identical_post_merge(self, shards):
        concat = [sequence for shard in shards for sequence in shard]
        reference = MobilityKnowledge.from_sequences(concat, REGIONS)
        merged = MobilityKnowledge.from_partials(
            [partial_of(shard) for shard in shards], regions=REGIONS
        )
        for origin in REGIONS:
            for destination in REGIONS:
                assert merged.transition_probability(
                    origin, destination
                ) == reference.transition_probability(origin, destination)
            assert merged.region_stats(origin) == reference.region_stats(
                origin
            )
            assert merged.mean_dwell(origin) == reference.mean_dwell(origin)

    @settings(max_examples=25, deadline=None)
    @given(corpora, corpora)
    def test_fold_is_incremental_observe(self, first_window, second_window):
        """fold(partial) == having observed the window's sequences."""
        knowledge = MobilityKnowledge.from_sequences(first_window, REGIONS)
        knowledge.fold(partial_of(second_window))
        assert knowledge == MobilityKnowledge.from_sequences(
            first_window + second_window, REGIONS
        )

    @settings(max_examples=25, deadline=None)
    @given(corpora)
    def test_to_partial_roundtrip(self, corpus):
        knowledge = MobilityKnowledge.from_sequences(corpus, REGIONS)
        exported = knowledge.to_partial()
        assert exported == partial_of(corpus)
        rebuilt = MobilityKnowledge.from_partials([exported])
        assert rebuilt == knowledge
        # The export is a deep copy: mutating it must not leak back.
        exported.observe(
            MobilitySemanticsSequence(
                "dev",
                [
                    MobilitySemantic(
                        EVENT_STAY, REGIONS[0], REGIONS[0], TimeRange(0, 60)
                    )
                ],
            )
        )
        assert knowledge == rebuilt

    def test_from_partials_empty_needs_regions(self):
        with pytest.raises(InferenceError):
            MobilityKnowledge.from_partials([])
        empty = MobilityKnowledge.from_partials([], regions=REGIONS)
        assert empty == MobilityKnowledge.from_sequences([], REGIONS)

    @settings(max_examples=15, deadline=None)
    @given(corpora)
    def test_partial_pickle_roundtrip(self, corpus):
        """The process backend ships shards by pickle; it must be exact."""
        shard = partial_of(corpus)
        assert pickle.loads(pickle.dumps(shard)) == shard


# ----------------------------------------------------------------------
# The exact accumulator underneath
# ----------------------------------------------------------------------
class TestExactSum:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.floats(
                min_value=-1e12,
                max_value=1e12,
                allow_nan=False,
                allow_infinity=False,
            ),
            max_size=20,
        ),
        st.randoms(use_true_random=False),
    )
    def test_order_and_grouping_independent(self, values, rng):
        """Any permutation and any split point yields the same total."""
        reference = ExactSum(values)
        shuffled = list(values)
        rng.shuffle(shuffled)
        assert ExactSum(shuffled) == reference
        split = rng.randrange(len(values) + 1)
        left, right = ExactSum(values[:split]), ExactSum(values[split:])
        left.merge(right)
        assert left == reference
        assert reference.value == math.fsum(values)

    def test_plain_float_addition_would_fail(self):
        """The motivating counterexample: += is not associative."""
        values = [1e16, 1.0, 1.0, -1e16]
        grouped = (1e16 + 1.0 + 1.0) + -1e16
        assert grouped != math.fsum(values)  # plain += loses the 2.0
        split = ExactSum(values[:2])
        split.merge(ExactSum(values[2:]))
        assert split.value == math.fsum(values) == 2.0

    def test_copy_is_independent(self):
        original = ExactSum([1.5, 2.5])
        clone = original.copy()
        clone.add(1.0)
        assert original.value == 4.0
        assert clone.value == 5.0

    def test_region_stats_equality_tracks_exact_totals(self):
        a = RegionStats()
        b = RegionStats()
        for value in (1e16, 1.0):
            a.add_visit(value, stay=True)
        # Same visits in the opposite order: plain floats would disagree.
        for value in (1.0, 1e16):
            b.add_visit(value, stay=True)
        assert a == b
        assert a.total_dwell == b.total_dwell == math.fsum((1e16, 1.0))
        merged = RegionStats()
        merged.add(a)
        merged.add(RegionStats())
        assert merged == a
