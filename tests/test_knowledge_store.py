"""The epoch-based knowledge lifecycle: stores, retention, exact inverse.

Sliding-window retention is only sound if subtraction is the *exact*
inverse of the fold: retiring an epoch must leave knowledge bit-for-bit
identical — integer counts, ExactSum dwell totals, structural dict
equality — to knowledge that never folded it.  The property tests here
drive that with adversarial float durations (where plain ``-=`` over
accumulated floats would drift), and check that a windowed store's state
is independent of how each epoch's evidence was sharded and merged.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Translator
from repro.core.complementing import (
    ExactSum,
    MobilityKnowledge,
    PartialKnowledge,
    RegionStats,
)
from repro.core.semantics import (
    EVENT_PASS_BY,
    EVENT_STAY,
    MobilitySemantic,
    MobilitySemanticsSequence,
)
from repro.engine import Engine, EngineConfig
from repro.errors import ConfigError, InferenceError
from repro.knowledge import (
    ExponentialDecay,
    KnowledgeStore,
    RetentionPolicy,
    SlidingWindow,
    Unbounded,
    parse_retention,
)
from repro.live import LiveConfig, LiveTranslationService
from repro.positioning import RecordStream, windowed_records
from repro.timeutil import TimeRange

from .conftest import make_two_shop_dsm, stationary_sequence, walk_sequence

REGIONS = ["r-atrium", "r-cafe", "r-gym", "r-shop"]

durations = st.floats(
    min_value=0.1, max_value=7200.0, allow_nan=False, allow_infinity=False
)
gaps = st.one_of(
    st.floats(min_value=0.0, max_value=400.0),
    st.floats(min_value=601.0, max_value=2000.0),
)


@st.composite
def annotated_sequences(draw):
    """A random annotated semantics sequence over the small vocabulary."""
    count = draw(st.integers(min_value=0, max_value=6))
    clock = draw(st.floats(min_value=0.0, max_value=1e6))
    semantics = []
    for _ in range(count):
        clock += draw(gaps)
        duration = draw(durations)
        region = draw(st.sampled_from(REGIONS))
        event = draw(st.sampled_from([EVENT_STAY, EVENT_PASS_BY]))
        semantics.append(
            MobilitySemantic(
                event, region, region, TimeRange(clock, clock + duration)
            )
        )
        clock += duration
    return MobilitySemanticsSequence("dev", semantics)


corpora = st.lists(annotated_sequences(), max_size=5)
#: A stream of epochs, each a list of annotated sequences.
epoch_streams = st.lists(
    st.lists(annotated_sequences(), max_size=3), min_size=1, max_size=5
)


def partial_of(corpus) -> PartialKnowledge:
    return PartialKnowledge.from_sequences(corpus, REGIONS)


def knowledge_of(*corpora_) -> MobilityKnowledge:
    return MobilityKnowledge.from_sequences(
        [seq for corpus in corpora_ for seq in corpus], REGIONS
    )


# ----------------------------------------------------------------------
# subtract is the exact inverse of add/fold
# ----------------------------------------------------------------------
class TestExactInverse:
    @settings(max_examples=40, deadline=None)
    @given(corpora, corpora)
    def test_partial_subtract_inverts_add(self, base, extra):
        shard = partial_of(base)
        shard.add(partial_of(extra))
        shard.subtract(partial_of(extra))
        assert shard == partial_of(base)

    @settings(max_examples=40, deadline=None)
    @given(epoch_streams)
    def test_retiring_first_epoch_equals_never_folding_it(self, epochs):
        """The acceptance property: fold epochs A,B,C,... then unfold A
        == knowledge built over only B,C,... — exact equality."""
        knowledge = MobilityKnowledge(regions=list(REGIONS))
        for epoch in epochs:
            knowledge.fold(partial_of(epoch))
        knowledge.unfold(partial_of(epochs[0]))
        assert knowledge == knowledge_of(*epochs[1:])

    @settings(max_examples=25, deadline=None)
    @given(epoch_streams)
    def test_unfolding_every_epoch_leaves_empty_knowledge(self, epochs):
        knowledge = MobilityKnowledge(regions=list(REGIONS))
        for epoch in epochs:
            knowledge.fold(partial_of(epoch))
        for epoch in epochs:
            knowledge.unfold(partial_of(epoch))
        assert knowledge == MobilityKnowledge(regions=list(REGIONS))

    @settings(max_examples=25, deadline=None)
    @given(corpora, corpora)
    def test_queries_identical_after_retirement(self, retained, retired):
        folded = MobilityKnowledge(regions=list(REGIONS))
        folded.fold(partial_of(retained))
        folded.fold(partial_of(retired))
        folded.unfold(partial_of(retired))
        reference = knowledge_of(retained)
        for origin in REGIONS:
            for destination in REGIONS:
                assert folded.transition_probability(
                    origin, destination
                ) == reference.transition_probability(origin, destination)
            assert folded.region_stats(origin) == reference.region_stats(
                origin
            )
            assert folded.mean_dwell(origin) == reference.mean_dwell(origin)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(
                min_value=-1e12,
                max_value=1e12,
                allow_nan=False,
                allow_infinity=False,
            ),
            max_size=16,
        ),
        st.lists(
            st.floats(
                min_value=-1e12,
                max_value=1e12,
                allow_nan=False,
                allow_infinity=False,
            ),
            max_size=16,
        ),
    )
    def test_exactsum_subtract_inverts_merge(self, base, extra):
        total = ExactSum(base)
        total.merge(ExactSum(extra))
        total.subtract(ExactSum(extra))
        assert total == ExactSum(base)

    def test_subtract_never_folded_raises_and_preserves_state(self):
        stay = MobilitySemanticsSequence(
            "dev",
            [
                MobilitySemantic(
                    EVENT_STAY, REGIONS[0], REGIONS[0], TimeRange(0, 60)
                ),
                MobilitySemantic(
                    EVENT_STAY, REGIONS[1], REGIONS[1], TimeRange(70, 90)
                ),
            ],
        )
        folded = partial_of([stay])
        before = partial_of([stay])
        with pytest.raises(InferenceError):
            folded.subtract(partial_of([stay, stay]))
        assert folded == before
        knowledge = MobilityKnowledge(regions=list(REGIONS))
        knowledge.fold(folded)
        with pytest.raises(InferenceError):
            knowledge.unfold(partial_of([stay, stay]))
        assert knowledge == knowledge_of([stay])

    def test_subtract_rejects_vocabulary_mismatch(self):
        a = PartialKnowledge(regions=list(REGIONS))
        b = PartialKnowledge(regions=REGIONS + ["r-extra"])
        with pytest.raises(InferenceError):
            a.subtract(b)
        knowledge = MobilityKnowledge(regions=list(REGIONS))
        with pytest.raises(InferenceError):
            knowledge.unfold(b)

    def test_region_stats_subtract_validates(self):
        stats = RegionStats()
        stats.add_visit(30.0, stay=True)
        bigger = RegionStats()
        bigger.add_visit(30.0, stay=True)
        bigger.add_visit(40.0, stay=False)
        with pytest.raises(InferenceError):
            stats.subtract(bigger)


# ----------------------------------------------------------------------
# The store under its retention policies
# ----------------------------------------------------------------------
class TestKnowledgeStore:
    def test_requires_regions_or_knowledge(self):
        with pytest.raises(InferenceError):
            KnowledgeStore()

    def test_unbounded_is_plain_fold(self):
        """Default retention: the store is a bare cumulative fold — no
        epoch ring, nothing retired, every rolled epoch retained."""
        corpus = [
            MobilitySemanticsSequence(
                "dev",
                [
                    MobilitySemantic(
                        EVENT_STAY, REGIONS[0], REGIONS[0], TimeRange(0, 60)
                    )
                ],
            )
        ]
        store = KnowledgeStore(REGIONS)
        for _ in range(3):
            store.fold(partial_of(corpus))
            store.roll()
        assert isinstance(store.retention, Unbounded)
        assert len(store.epochs) == 0
        assert store.epochs_rolled == store.retained_epochs == 3
        assert store.epochs_retired == 0
        assert store.knowledge == knowledge_of(corpus, corpus, corpus)

    def test_wrap_mutates_the_callers_object(self):
        knowledge = MobilityKnowledge(regions=list(REGIONS))
        store = KnowledgeStore.wrap(knowledge)
        store.fold(partial_of([]))
        assert store.knowledge is knowledge

    @settings(max_examples=25, deadline=None)
    @given(epoch_streams, st.integers(min_value=1, max_value=3))
    def test_sliding_window_equals_fold_of_retained_epochs(
        self, epochs, max_epochs
    ):
        store = KnowledgeStore(
            REGIONS, retention=SlidingWindow(max_epochs=max_epochs)
        )
        for epoch in epochs:
            store.fold(partial_of(epoch))
            store.roll()
        retained = epochs[-max_epochs:]
        assert store.knowledge == knowledge_of(*retained)
        assert store.retained_epochs == min(len(epochs), max_epochs)
        assert store.epochs_retired == max(0, len(epochs) - max_epochs)

    @settings(max_examples=25, deadline=None)
    @given(epoch_streams, st.permutations(range(4)))
    def test_sliding_window_state_order_independent(self, epochs, order):
        """Shard-merge order within an epoch cannot change store state:
        each epoch's evidence folds as one shard, as several shards in
        input order, or as several shards in a permuted order — the
        retained knowledge and ring shards come out identical."""
        reference = KnowledgeStore(REGIONS, retention="window:2")
        permuted = KnowledgeStore(REGIONS, retention="window:2")
        for epoch in epochs:
            reference.fold(partial_of(epoch))
            shards = [partial_of([sequence]) for sequence in epoch]
            for index in order:
                if index < len(shards):
                    permuted.fold(shards[index])
            # Sequences the permutation template missed (template is over
            # the max shard count) fold afterwards; merging is exact, so
            # any order must agree.
            for index in range(4, len(shards)):
                permuted.fold(shards[index])
            reference.roll()
            permuted.roll()
        assert permuted.knowledge == reference.knowledge
        assert [e.partial for e in permuted.epochs] == [
            e.partial for e in reference.epochs
        ]
        assert permuted.retained_epochs == reference.retained_epochs

    def test_ttl_retention_uses_data_time(self):
        corpus = [
            MobilitySemanticsSequence(
                "dev",
                [
                    MobilitySemantic(
                        EVENT_STAY, REGIONS[0], REGIONS[0], TimeRange(0, 60)
                    )
                ],
            )
        ]
        store = KnowledgeStore(
            REGIONS, retention=SlidingWindow(ttl_seconds=100.0)
        )
        store.fold(partial_of(corpus), start=0.0, end=50.0)
        store.roll(now=50.0)
        assert store.retained_epochs == 1
        # Same epoch, seen from 200s of data time later: expired.
        store.fold(partial_of(corpus), start=240.0, end=250.0)
        store.roll(now=250.0)
        assert store.retained_epochs == 1
        assert store.epochs_retired == 1
        assert store.knowledge == knowledge_of(corpus)
        # roll(now=None) falls back to the newest folded timestamp.
        store.fold(partial_of(corpus), start=500.0, end=600.0)
        store.roll()
        assert store.epochs_retired == 2

    def test_decay_halves_after_half_life(self):
        walk = MobilitySemanticsSequence(
            "dev",
            [
                MobilitySemantic(
                    EVENT_PASS_BY, REGIONS[0], REGIONS[0], TimeRange(0, 30)
                ),
                MobilitySemantic(
                    EVENT_PASS_BY, REGIONS[1], REGIONS[1], TimeRange(40, 70)
                ),
            ],
        )
        store = KnowledgeStore(REGIONS, retention=ExponentialDecay(2.0))
        store.fold(partial_of([walk]))
        store.roll()
        store.roll()
        decayed = store.knowledge.transition_count(REGIONS[0], REGIONS[1])
        assert decayed == pytest.approx(0.5)
        assert store.knowledge.sequences_seen == pytest.approx(0.5)
        # Fresh evidence folds in at full weight on top of the decayed.
        store.fold(partial_of([walk]))
        assert store.knowledge.transition_count(
            REGIONS[0], REGIONS[1]
        ) == pytest.approx(1.5)
        assert 0.0 < store.knowledge.transition_probability(
            REGIONS[0], REGIONS[1]
        ) < 1.0

    def test_decay_prunes_vanishing_weights(self):
        walk = MobilitySemanticsSequence(
            "dev",
            [
                MobilitySemantic(
                    EVENT_PASS_BY, REGIONS[0], REGIONS[0], TimeRange(0, 30)
                ),
                MobilitySemantic(
                    EVENT_PASS_BY, REGIONS[1], REGIONS[1], TimeRange(40, 70)
                ),
            ],
        )
        store = KnowledgeStore(REGIONS, retention=ExponentialDecay(1.0))
        store.fold(partial_of([walk]))
        for _ in range(40):  # 2**-40 < the prune threshold
            store.roll()
        assert store.knowledge.transition_count(REGIONS[0], REGIONS[1]) == 0

    def test_newest_timestamp_is_a_monotone_watermark(self):
        """Regression: the data-time "present" that TTL retention
        measures against must never move backwards (or vanish) because
        retention retired the newest timestamped epoch.  Under a
        combined ``window:1+Ts`` policy the count bound does exactly
        that, and late-arriving stale evidence must still expire
        against the true watermark."""
        corpus = [
            MobilitySemanticsSequence(
                "dev",
                [
                    MobilitySemantic(
                        EVENT_STAY, REGIONS[0], REGIONS[0], TimeRange(0, 60)
                    )
                ],
            )
        ]
        store = KnowledgeStore(
            REGIONS,
            retention=SlidingWindow(max_epochs=1, ttl_seconds=100.0),
        )
        store.fold(partial_of(corpus), start=990.0, end=1000.0)
        store.roll()
        assert store.newest_timestamp == 1000.0
        # A quiet roll: the count bound retires the only timestamped
        # epoch (and TTL drops the timestamp-less quiet one); the
        # watermark must survive both retirements.
        store.roll()
        assert store.retained_epochs == 0
        assert store.newest_timestamp == 1000.0
        # Stale evidence (older than 1000 - 100s) expires against the
        # watermark even though no retained epoch carries a timestamp.
        store.fold(partial_of(corpus), start=700.0, end=800.0)
        retired = store.roll()
        assert any(epoch.end == 800.0 for epoch in retired)
        assert store.knowledge == MobilityKnowledge(regions=list(REGIONS))
        # The watermark itself never regresses under older folds.
        assert store.newest_timestamp == 1000.0

    def test_retire_unknown_epoch_raises(self):
        from repro.knowledge import Epoch

        store = KnowledgeStore(REGIONS, retention="window:2")
        foreign = Epoch(index=99, partial=PartialKnowledge(regions=REGIONS))
        with pytest.raises(InferenceError):
            store.retire(foreign)

    def test_to_partial_merges_across_stores(self):
        corpus = [
            MobilitySemanticsSequence(
                "dev",
                [
                    MobilitySemantic(
                        EVENT_STAY, REGIONS[0], REGIONS[0], TimeRange(0, 60)
                    )
                ],
            )
        ]
        east = KnowledgeStore(REGIONS)
        west = KnowledgeStore(REGIONS)
        east.fold(partial_of(corpus))
        west.fold(partial_of(corpus))
        merged = MobilityKnowledge(regions=list(REGIONS))
        merged.fold(east.to_partial())
        merged.fold(west.to_partial())
        assert merged == knowledge_of(corpus, corpus)


# ----------------------------------------------------------------------
# Retention specs
# ----------------------------------------------------------------------
class TestParseRetention:
    @pytest.mark.parametrize(
        ("spec", "kind"),
        [
            (None, Unbounded),
            ("unbounded", Unbounded),
            ("window:4", SlidingWindow),
            ("window:300s", SlidingWindow),
            ("decay:8", ExponentialDecay),
            ("DECAY:0.5", ExponentialDecay),
        ],
    )
    def test_valid_specs(self, spec, kind):
        policy = parse_retention(spec)
        assert isinstance(policy, kind)
        assert isinstance(policy, RetentionPolicy)
        # A policy instance passes through untouched.
        assert parse_retention(policy) is policy

    def test_window_spec_arguments(self):
        assert parse_retention("window:4").max_epochs == 4
        assert parse_retention("window:300s").ttl_seconds == 300.0
        assert parse_retention("decay:8").half_life == 8.0

    @pytest.mark.parametrize(
        "spec",
        [
            "window", "window:", "window:x", "window:0", "window:-1s",
            "window:nans", "window:infs", "decay:", "decay:nope",
            "decay:0", "decay:nan", "decay:inf", "ttl:4", 42,
        ],
    )
    def test_invalid_specs(self, spec):
        with pytest.raises(ConfigError):
            parse_retention(spec)

    @pytest.mark.parametrize(
        "spec", ["window:1_0", "decay:1_0", "window:1_0s", "window: 10"]
    )
    def test_python_numeric_literal_syntax_rejected(self, spec):
        """Regression: ``int``/``float`` accept underscore separators
        and padding ("1_0" parses as 10), so ``window:1_0`` used to be
        silently accepted as ``window:10``.  A config surface must only
        take canonical digit strings, and the error must name the
        offending spec."""
        with pytest.raises(ConfigError) as excinfo:
            parse_retention(spec)
        assert repr(spec) in str(excinfo.value)

    def test_sliding_window_needs_a_bound(self):
        with pytest.raises(ConfigError):
            SlidingWindow()

    def test_config_error_is_a_value_error(self):
        """Callers outside the TRIPS hierarchy (argparse handlers,
        config loaders) can catch the builtin."""
        assert issubclass(ConfigError, ValueError)
        assert issubclass(ConfigError, Exception)

    @pytest.mark.parametrize(
        "spec",
        ["window:0", "window:-2", "window:0s", "decay:-1", "decay:0"],
    )
    def test_malformed_specs_raise_clean_value_errors(self, spec):
        """A malformed spec is a plain bad value: it raises a ValueError
        whose message names the offending spec — a clean error, not a
        traceback through the policy constructors."""
        with pytest.raises(ValueError) as excinfo:
            parse_retention(spec)
        message = str(excinfo.value)
        assert spec in message or repr(spec) in message

    def test_malformed_spec_message_explains_the_bound(self):
        with pytest.raises(ValueError, match="max_epochs must be >= 1"):
            parse_retention("window:0")
        with pytest.raises(ValueError, match="finite and positive"):
            parse_retention("decay:-1")

    def test_policy_names(self):
        assert parse_retention("window:4").name == "window:4"
        assert parse_retention("window:300s").name == "window:300s"
        assert parse_retention("decay:8").name == "decay:8"
        assert Unbounded().name == "unbounded"


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------
def shop_records(prefix: str = "", start: float = 0.0):
    sequences = []
    for i in range(3):
        sequences.append(
            stationary_sequence(
                f"{prefix}dwell-{i}",
                at=(5.0 if i % 2 == 0 else 15.0, 15.0, 1),
                seed=i,
                start=start + 120.0 * i,
            )
        )
    for i in range(2):
        sequences.append(
            walk_sequence(f"{prefix}walk-{i}", start=start + 60.0 * i)
        )
    records = [r for s in sequences for r in s.records]
    return sorted(records, key=lambda r: (r.timestamp, r.device_id))


def shop_windows(window_seconds: float = 60.0):
    from repro.positioning import PositioningSequence

    return [
        PositioningSequence.group_records(window)
        for window in windowed_records(
            RecordStream(iter(shop_records())), window_seconds
        )
    ]


class TestEngineStores:
    def test_engine_config_validates_retention(self):
        with pytest.raises(ConfigError):
            EngineConfig(retention="window:zero")
        assert EngineConfig(retention="window:4").retention == "window:4"

    def test_make_store_uses_config_retention(self):
        engine = Engine(
            Translator(make_two_shop_dsm()),
            EngineConfig(retention="window:3"),
        )
        store = engine.make_store()
        assert isinstance(store.retention, SlidingWindow)
        assert store.retention.max_epochs == 3
        override = engine.make_store(retention="decay:2")
        assert isinstance(override.retention, ExponentialDecay)

    def test_make_store_none_when_knowledge_disabled(self):
        from repro.core import TranslatorConfig

        translator = Translator(
            make_two_shop_dsm(),
            config=TranslatorConfig(enable_complementing=False),
        )
        assert Engine(translator).make_store() is None

    def test_increment_rejects_knowledge_and_store_together(self):
        engine = Engine(Translator(make_two_shop_dsm()))
        store = engine.make_store()
        with pytest.raises(ConfigError):
            engine.translate_increment(
                [], MobilityKnowledge(regions=["r"]), store=store
            )

    def test_store_path_equals_legacy_path_under_unbounded(self):
        """Folding through an explicit store reproduces the legacy
        pass-the-knowledge-back path bit for bit."""
        windows = shop_windows()
        engine = Engine(
            Translator(make_two_shop_dsm()), EngineConfig(chunk_size=2)
        )
        store = engine.make_store()
        knowledge = None
        for window in windows:
            _, knowledge = engine.translate_increment(window, knowledge)
            engine.translate_increment(window, store=store)
            store.roll()
        assert store.knowledge == knowledge
        assert store.retained_epochs == len(windows)

    def test_windowed_store_equals_increment_over_recent_windows(self):
        """A window:N store equals a fresh unbounded fold over only the
        last N windows — through the full engine path."""
        windows = shop_windows()
        assert len(windows) > 2
        engine = Engine(
            Translator(make_two_shop_dsm()), EngineConfig(chunk_size=2)
        )
        store = engine.make_store(retention="window:2")
        for window in windows:
            engine.translate_increment(window, store=store)
            store.roll()
        reference = None
        for window in windows[-2:]:
            _, reference = engine.translate_increment(window, reference)
        assert store.knowledge == reference


# ----------------------------------------------------------------------
# Live service lifecycle
# ----------------------------------------------------------------------
class TestLiveLifecycle:
    def venue(self):
        return {"east": Translator(make_two_shop_dsm())}

    def run(self, engine_config=None, live_config=None, retention=None):
        service = LiveTranslationService(
            self.venue(),
            engine_config or EngineConfig(chunk_size=2),
            live_config or LiveConfig(window_seconds=60.0),
            retention=retention,
        )
        with service:
            service.run_stream(
                RecordStream(iter(shop_records())), venue_id="east"
            )
            return service, service.finalize()

    def test_sliding_window_service_knowledge_is_recent_only(self):
        service, _ = self.run(
            engine_config=EngineConfig(chunk_size=2, retention="window:2")
        )
        store = service.store("east")
        assert store.retained_epochs == 2
        assert store.epochs_retired == service.stats.windows - 2
        # The retained knowledge equals an unbounded fold of only the
        # last two windows' sequences — exact, through the full service.
        windows = shop_windows()
        engine = Engine(
            Translator(make_two_shop_dsm()), EngineConfig(chunk_size=2)
        )
        reference = None
        for window in windows[-2:]:
            _, reference = engine.translate_increment(window, reference)
        assert store.knowledge == reference
        stats = service.stats.venues["east"]
        assert stats.retained_epochs == 2
        assert stats.knowledge_sequences == reference.sequences_seen

    def test_per_venue_retention_map(self):
        service, _ = self.run(retention={"east": "decay:2"})
        assert isinstance(
            service.store("east").retention, ExponentialDecay
        )
        assert 0 < service.knowledge("east").sequences_seen < (
            service.stats.venues["east"].sequences
        )

    def test_retention_map_rejects_unknown_venue(self):
        with pytest.raises(ConfigError):
            LiveTranslationService(
                self.venue(), retention={"west": "window:2"}
            )
        with pytest.raises(ConfigError):
            LiveTranslationService(self.venue(), retention="window:nope")

    def test_unbounded_default_still_matches_batch(self):
        """The PR 3 acceptance invariant survives the store refactor."""
        from repro.positioning import sequence_stream

        service, finalized = self.run()
        sequences = list(
            sequence_stream(RecordStream(iter(shop_records())), 60.0)
        )
        reference = Engine(
            Translator(make_two_shop_dsm()), EngineConfig(chunk_size=2)
        ).translate_batch(sequences)
        assert finalized["east"].results == reference.results
        assert finalized["east"].knowledge == reference.knowledge
        assert service.store("east").retained_epochs == service.stats.windows

    def test_venue_translate_seconds_tracked_and_rendered(self):
        service, _ = self.run()
        stats = service.stats
        venue = stats.venues["east"]
        assert 0 < venue.translate_seconds <= stats.translate_seconds
        table = stats.format_table()
        assert "translate" in table
        assert "epochs" in table

    def test_adaptive_windowing_sets_per_venue_target(self):
        service = LiveTranslationService(
            self.venue(),
            EngineConfig(chunk_size=2),
            LiveConfig(window_seconds=60.0, adaptive_windowing=True),
        )
        with service:
            service.run_stream(
                RecordStream(iter(shop_records())), venue_id="east"
            )
            target = service.stats.venues["east"].window_records_target
            assert target is not None and target >= 8
            assert service.window_bounds("east") == (60.0, target)
            # Unknown / unobserved venues keep the global bounds.
            assert service.window_bounds(None) == (60.0, None)
            service.finalize()  # adaptive replay still finalizes cleanly

    def test_adaptive_off_keeps_global_bounds(self):
        service, _ = self.run()
        assert service.window_bounds("east") == (60.0, None)
        assert (
            service.stats.venues["east"].window_records_target is None
        )

    def test_adaptive_respects_global_ceiling(self):
        service = LiveTranslationService(
            self.venue(),
            EngineConfig(chunk_size=2),
            LiveConfig(
                window_seconds=60.0,
                max_window_records=10,
                adaptive_windowing=True,
            ),
        )
        with service:
            service.run_stream(
                RecordStream(iter(shop_records())), venue_id="east"
            )
        assert service.stats.venues["east"].window_records_target <= 10

    def test_adaptive_serve_async_path(self):
        service = LiveTranslationService(
            self.venue(),
            EngineConfig(chunk_size=2),
            LiveConfig(window_seconds=60.0, adaptive_windowing=True),
        )
        with service:
            stats = service.serve(
                {"east": RecordStream(iter(shop_records()))}
            )
        assert stats.windows > 1
        assert stats.venues["east"].window_records_target is not None

    def test_live_config_validates_adaptive_alpha(self):
        with pytest.raises(ConfigError):
            LiveConfig(adaptive_alpha=0.0)
        with pytest.raises(ConfigError):
            LiveConfig(adaptive_alpha=1.5)
