"""Property-based tests of geometry invariants (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    BoundingBox,
    Point,
    Polygon,
    Segment,
    path_length,
    straightness,
)

finite = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)
small = st.floats(min_value=0.1, max_value=100.0)


@st.composite
def points(draw, floor=st.just(1)):
    return Point(draw(finite), draw(finite), draw(floor))


@st.composite
def rectangles(draw):
    x = draw(finite)
    y = draw(finite)
    w = draw(small)
    h = draw(small)
    return Polygon.rectangle(x, y, x + w, y + h)


class TestPointProperties:
    @given(points(), points())
    def test_distance_symmetry(self, a, b):
        assert a.planar_distance_to(b) == b.planar_distance_to(a)

    @given(points(), points(), points())
    def test_triangle_inequality(self, a, b, c):
        direct = a.planar_distance_to(c)
        via = a.planar_distance_to(b) + b.planar_distance_to(c)
        assert direct <= via + 1e-6

    @given(points(), points())
    def test_midpoint_equidistant(self, a, b):
        mid = a.midpoint(b)
        d1 = mid.planar_distance_to(a)
        d2 = mid.planar_distance_to(b)
        assert math.isclose(d1, d2, rel_tol=1e-6, abs_tol=1e-6)

    @given(points(), finite, finite)
    def test_translate_inverse(self, p, dx, dy):
        assert p.translate(dx, dy).translate(-dx, -dy).almost_equals(p, 1e-6)


class TestSegmentProperties:
    @given(points(), points(), points())
    def test_closest_point_is_nearest_vertexwise(self, a, b, q):
        segment = Segment(a, b)
        closest = segment.closest_point_to(q)
        d = q.planar_distance_to(closest)
        assert d <= q.planar_distance_to(a) + 1e-6
        assert d <= q.planar_distance_to(b) + 1e-6

    @given(points(), points(), st.floats(min_value=0, max_value=1))
    def test_point_at_stays_on_segment(self, a, b, t):
        segment = Segment(a, b)
        point = segment.point_at(t)
        assert segment.distance_to_point(point) <= 1e-5


class TestPolygonProperties:
    @given(rectangles())
    def test_rectangle_area_matches_bbox(self, poly):
        # Shoelace on large coordinates cancels ~1e-9 absolute error.
        assert math.isclose(poly.area, poly.bounds.area,
                            rel_tol=1e-6, abs_tol=1e-6)

    @given(rectangles())
    def test_centroid_inside(self, poly):
        assert poly.contains_point(poly.centroid)

    @given(rectangles(), finite, finite)
    def test_translation_preserves_area(self, poly, dx, dy):
        assert math.isclose(poly.translate(dx, dy).area, poly.area,
                            rel_tol=1e-6, abs_tol=1e-6)

    @given(rectangles())
    def test_vertices_on_boundary(self, poly):
        for vertex in poly.vertices:
            assert poly.contains_point(vertex)
            assert poly.boundary_distance(vertex) <= 1e-9

    @given(rectangles())
    def test_normalized_is_ccw(self, poly):
        assert poly.normalized().signed_area >= 0


class TestMeasureProperties:
    @settings(max_examples=50)
    @given(st.lists(points(), min_size=2, max_size=20))
    def test_path_length_at_least_displacement(self, pts):
        displacement = pts[0].planar_distance_to(pts[-1])
        assert path_length(pts) >= displacement - 1e-6

    @settings(max_examples=50)
    @given(st.lists(points(), min_size=2, max_size=20))
    def test_straightness_bounded(self, pts):
        value = straightness(pts)
        assert 0.0 <= value <= 1.0


class TestBoundingBoxProperties:
    @given(st.lists(points(), min_size=1, max_size=30))
    def test_around_contains_all(self, pts):
        box = BoundingBox.around(pts)
        assert all(box.contains_point(p) for p in pts)

    @given(st.lists(points(), min_size=1, max_size=10),
           st.lists(points(), min_size=1, max_size=10))
    def test_union_contains_both(self, pts_a, pts_b):
        box_a = BoundingBox.around(pts_a)
        box_b = BoundingBox.around(pts_b)
        union = box_a.union(box_b)
        assert all(union.contains_point(p) for p in pts_a + pts_b)
