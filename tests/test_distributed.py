"""Distributed ingestion: sharded instances and the exact knowledge merge.

The cluster's contract extends the live service's: sharding is a
*partition*, never an approximation.  Whatever device-stable router and
whatever exchange schedule, after a full exchange round every shard's
live knowledge — and the coordinator's merged view — must equal, bit for
bit, the single-instance fold over the same windows, and therefore the
one-shot ``Engine.translate_batch`` knowledge once the feed has drained.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Translator
from repro.distributed import (
    DeviceHashRouter,
    KnowledgeExchange,
    ShardedIngestService,
    VenueAffineRouter,
    parse_shard_router,
    shard_records,
    stable_hash,
)
from repro.engine import Engine, EngineConfig
from repro.errors import ConfigError
from repro.knowledge import KnowledgeStore
from repro.live import LiveConfig, LiveTranslationService
from repro.positioning import RecordStream, sequence_stream, windowed_records

from .conftest import make_two_shop_dsm
from .test_live import shop_records

WINDOW_SECONDS = 60.0


def make_cluster(shards: int = 2, **kwargs) -> ShardedIngestService:
    defaults = dict(
        engine_config=EngineConfig(chunk_size=2),
        live_config=LiveConfig(window_seconds=WINDOW_SECONDS),
    )
    defaults.update(kwargs)
    return ShardedIngestService(
        {"east": Translator(make_two_shop_dsm())}, shards=shards, **defaults
    )


@pytest.fixture(scope="module")
def reference():
    """The one-shot batch over the same windowed sequence split."""
    sequences = list(
        sequence_stream(RecordStream(iter(shop_records())), WINDOW_SECONDS)
    )
    return Engine(
        Translator(make_two_shop_dsm()), EngineConfig(chunk_size=2)
    ).translate_batch(sequences)


# ----------------------------------------------------------------------
# Shard routers
# ----------------------------------------------------------------------
class TestRouters:
    def test_stable_hash_is_process_independent(self):
        # Golden value: a salted hash (the builtin) could never pin this.
        assert stable_hash("dwell-0") == stable_hash("dwell-0")
        assert stable_hash("dwell-0") != stable_hash("dwell-1")

    def test_device_hash_router_is_stable_and_in_range(self):
        router = DeviceHashRouter()
        for record in shop_records():
            index = router(record, 4)
            assert 0 <= index < 4
            assert index == router(record, 4)

    def test_device_hash_router_spreads_devices(self):
        router = DeviceHashRouter()
        routed = shard_records(shop_records(), router, 4)
        assert len(routed) > 1  # five devices should not all collide
        # Device affinity: each device appears on exactly one shard.
        for device in {r.device_id for r in shop_records()}:
            shards_of_device = {
                index
                for index, records in routed.items()
                if any(r.device_id == device for r in records)
            }
            assert len(shards_of_device) == 1

    def test_venue_affine_router_pins_a_venue_to_one_shard(self):
        router = VenueAffineRouter()
        tagged = shop_records("mall:") + shop_records("office:")
        indices = {router(r, 4) for r in tagged if r.device_id.startswith("mall:")}
        assert len(indices) == 1
        assert {router(r, 4) for r in tagged} <= set(range(4))

    def test_venue_affine_router_custom_extractor(self):
        router = VenueAffineRouter(venue_of=lambda record: "everything")
        indices = {router(r, 8) for r in shop_records()}
        assert len(indices) == 1

    def test_venue_affine_cluster_pins_tagged_windows(self):
        """Tagged windows (the CLI path, untagged device ids) must pin
        wholesale to the venue's shard — venue affinity cannot depend on
        device-id prefixes the feed does not carry."""
        cluster = make_cluster(shards=4, shard_router="venue")
        with cluster:
            first = cluster.process_window(shop_records(), venue_id="east")
            second = cluster.process_window(
                shop_records(start=700.0), venue_id="east"
            )
        assert len(first.shards) == 1
        assert list(first.shards) == list(second.shards)
        expected = VenueAffineRouter().shard_of_venue("east", 4)
        assert list(first.shards) == [expected]

    def test_parse_shard_router(self):
        assert isinstance(parse_shard_router(None), DeviceHashRouter)
        assert isinstance(parse_shard_router("device"), DeviceHashRouter)
        assert isinstance(parse_shard_router("venue"), VenueAffineRouter)
        custom = lambda record, shards: 0
        assert parse_shard_router(custom) is custom
        with pytest.raises(ConfigError):
            parse_shard_router("round-robin")
        with pytest.raises(ConfigError):
            parse_shard_router(42)

    def test_shard_records_preserves_order_and_rejects_bad_index(self):
        records = shop_records()
        routed = shard_records(records, DeviceHashRouter(), 2)
        for batch in routed.values():
            timestamps = [r.timestamp for r in batch]
            assert timestamps == sorted(timestamps)
        assert sum(len(b) for b in routed.values()) == len(records)
        with pytest.raises(ConfigError):
            shard_records(records, lambda record, shards: shards, 2)


# ----------------------------------------------------------------------
# Construction gates
# ----------------------------------------------------------------------
class TestConstruction:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigError):
            make_cluster(shards=0)

    def test_rejects_bad_exchange_interval(self):
        with pytest.raises(ConfigError):
            make_cluster(exchange_interval=0)

    @pytest.mark.parametrize(
        "retention", ["window:2", "decay:4", {"east": "window:300s"}]
    )
    def test_rejects_non_unbounded_retention(self, retention):
        with pytest.raises(ConfigError):
            make_cluster(retention=retention)

    def test_rejects_non_unbounded_engine_default(self):
        with pytest.raises(ConfigError):
            make_cluster(
                engine_config=EngineConfig(chunk_size=2, retention="window:2")
            )

    def test_exchange_rejects_retiring_store_at_runtime(self):
        """Hand-assembled shards are guarded too, not just the service."""
        shard = LiveTranslationService(
            {"east": Translator(make_two_shop_dsm())},
            EngineConfig(chunk_size=2),
            retention="window:2",
        )
        with shard:
            shard.process_window(shop_records(), venue_id="east")
            with pytest.raises(ConfigError):
                KnowledgeExchange().exchange([shard])


# ----------------------------------------------------------------------
# The merge hooks underneath the exchange
# ----------------------------------------------------------------------
class TestMergeHooks:
    def test_export_delta_is_exactly_the_folds_in_between(self):
        engine = Engine(
            Translator(make_two_shop_dsm()), EngineConfig(chunk_size=2)
        )
        windows = [
            w
            for w in windowed_records(
                RecordStream(iter(shop_records())), WINDOW_SECONDS
            )
        ]
        from repro.positioning import PositioningSequence

        store = engine.make_store()
        engine.translate_increment(
            PositioningSequence.group_records(windows[0]), store=store
        )
        store.roll()
        baseline = store.to_partial()
        for window in windows[1:]:
            engine.translate_increment(
                PositioningSequence.group_records(window), store=store
            )
            store.roll()
        delta = store.export_delta(baseline)
        # The delta alone equals a fresh fold over only the later windows.
        fresh = engine.make_store()
        for window in windows[1:]:
            engine.translate_increment(
                PositioningSequence.group_records(window), store=fresh
            )
            fresh.roll()
        assert delta == fresh.to_partial()
        # And no baseline means the full export.
        assert store.export_delta() == store.to_partial()

    def test_make_store_attaches_external_knowledge(self):
        engine = Engine(Translator(make_two_shop_dsm()))
        external = engine.make_store().knowledge
        store = engine.make_store(knowledge=external)
        assert isinstance(store, KnowledgeStore)
        assert store.knowledge is external

    def test_ensure_store_materializes_before_any_window(self):
        service = LiveTranslationService(
            {"east": Translator(make_two_shop_dsm())},
            EngineConfig(chunk_size=2),
        )
        with service:
            assert service.store("east") is None
            store = service.ensure_store("east")
            assert store is not None
            assert store.knowledge.sequences_seen == 0
            assert service.ensure_store("east") is store
            assert service.store("east") is store


# ----------------------------------------------------------------------
# Convergence: the headline invariant
# ----------------------------------------------------------------------
class TestConvergence:
    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("exchange_interval", [1, 3])
    def test_every_shard_converges_to_single_instance(
        self, shards, exchange_interval, reference
    ):
        cluster = make_cluster(
            shards=shards, exchange_interval=exchange_interval
        )
        with cluster:
            stats = cluster.run_stream(
                RecordStream(iter(shop_records())), venue_id="east"
            )
            merged = cluster.merged_knowledge("east")
            assert merged == reference.knowledge
            for shard in cluster.shards:
                assert shard.knowledge("east") == merged
        assert stats.records == len(shop_records())
        assert stats.sequences == len(reference.results)
        assert stats.exchange.rounds >= 1

    def test_between_rounds_stale_never_wrong(self, reference):
        """With auto-exchange off, shards hold only their own evidence;
        one manual round converges them."""
        cluster = make_cluster(shards=2, exchange_interval=None)
        with cluster:
            cluster.run_stream(
                RecordStream(iter(shop_records())), venue_id="east"
            )
            partial_views = [
                shard.knowledge("east").sequences_seen
                for shard in cluster.shards
            ]
            # Each shard saw a strict subset of the devices...
            assert all(0 < seen < len(reference.results) for seen in partial_views)
            assert sum(partial_views) == len(reference.results)
            assert cluster.merged_knowledge("east") is None
            cluster.exchange_now()
            # ...and one round merges them exactly.
            assert cluster.merged_knowledge("east") == reference.knowledge
            for shard in cluster.shards:
                assert shard.knowledge("east") == reference.knowledge

    def test_finalize_matches_single_instance_modulo_order(self, reference):
        cluster = make_cluster(shards=4, exchange_interval=2)
        with cluster:
            cluster.run_stream(
                RecordStream(iter(shop_records())), venue_id="east"
            )
            finalized = cluster.finalize()["east"]
        order = lambda r: (r.device_id, r.raw.records[0].timestamp)
        assert sorted(finalized.results, key=order) == sorted(
            reference.results, key=order
        )
        assert finalized.knowledge == reference.knowledge

    def test_multi_venue_feeds_converge_per_venue(self):
        translators = {
            "east": Translator(make_two_shop_dsm()),
            "west": Translator(make_two_shop_dsm()),
        }
        feeds = {
            "east": shop_records("east:"),
            "west": shop_records("west:", start=30.0),
        }
        references = {
            venue: Engine(
                translators[venue], EngineConfig(chunk_size=2)
            ).translate_batch(
                list(
                    sequence_stream(
                        RecordStream(iter(records)), WINDOW_SECONDS
                    )
                )
            )
            for venue, records in feeds.items()
        }
        cluster = ShardedIngestService(
            translators,
            shards=2,
            engine_config=EngineConfig(chunk_size=2),
            live_config=LiveConfig(window_seconds=WINDOW_SECONDS),
            exchange_interval=2,
        )
        with cluster:
            stats = cluster.run_feeds(
                {v: RecordStream(iter(r)) for v, r in feeds.items()}
            )
            for venue, reference in references.items():
                merged = cluster.merged_knowledge(venue)
                assert merged == reference.knowledge
                for shard in cluster.shards:
                    assert shard.knowledge(venue) == merged
        assert set(stats.exchange.sequences_merged) == {"east", "west"}

    def test_shard_added_between_rounds_starts_from_fresh_baseline(
        self, reference
    ):
        """A shard that joins after rounds have already run has no
        ``(shard, venue)`` baseline: its first round must export its
        full evidence and receive the full cluster aggregate — and the
        incumbent, whose delta since its last round is zero, must end
        the round bit-for-bit equal to the newcomer."""
        def make_shard():
            return LiveTranslationService(
                {"east": Translator(make_two_shop_dsm())},
                EngineConfig(chunk_size=2),
                LiveConfig(window_seconds=WINDOW_SECONDS),
            )

        windows = list(
            windowed_records(RecordStream(iter(shop_records())), WINDOW_SECONDS)
        )
        assert len(windows) >= 2
        exchange = KnowledgeExchange()
        incumbent = make_shard()
        newcomer = make_shard()
        with incumbent, newcomer:
            for window in windows[:2]:
                incumbent.process_window(window, venue_id="east")
            first = exchange.exchange([incumbent])
            assert first.deltas == 1
            # The newcomer joins with the remaining windows' evidence.
            for window in windows[2:]:
                newcomer.process_window(window, venue_id="east")
            second = exchange.exchange([incumbent, newcomer])
            # Only the newcomer carried evidence this round.
            assert second.deltas == 1
            merged = exchange.merged_knowledge("east")
            assert merged == reference.knowledge
            assert incumbent.knowledge("east") == reference.knowledge
            assert newcomer.knowledge("east") == reference.knowledge

    def test_zero_delta_venue_export_is_stable(self):
        """A venue no shard has evidence for exports zero deltas: the
        round folds nothing for it, and repeated rounds leave every
        shard's stores bit-for-bit unchanged."""
        translators = {
            "east": Translator(make_two_shop_dsm()),
            "west": Translator(make_two_shop_dsm()),
        }

        def make_shard():
            return LiveTranslationService(
                translators,
                EngineConfig(chunk_size=2),
                LiveConfig(window_seconds=WINDOW_SECONDS),
            )

        exchange = KnowledgeExchange()
        shards = [make_shard(), make_shard()]
        with shards[0], shards[1]:
            # Evidence reaches only "east"; "west" stays quiet.
            shards[0].process_window(shop_records(), venue_id="east")
            first = exchange.exchange(shards)
            assert set(first.venues) == {"east", "west"}
            assert exchange.stats.sequences_merged["west"] == 0
            west = exchange.merged_partial("west")
            assert west is not None and west.sequences_seen == 0
            before = [
                (s.store("east").to_partial(), s.store("west").to_partial())
                for s in shards
            ]
            # A second all-quiet round is a bit-for-bit no-op.
            second = exchange.exchange(shards)
            assert second.deltas == 0
            after = [
                (s.store("east").to_partial(), s.store("west").to_partial())
                for s in shards
            ]
            assert after == before
            assert shards[0].knowledge("east") == shards[1].knowledge("east")

    @settings(
        deadline=None,
        max_examples=12,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        shards=st.sampled_from([2, 4]),
        assignment=st.lists(
            st.integers(min_value=0, max_value=3), min_size=5, max_size=5
        ),
        schedule=st.sets(st.integers(min_value=0, max_value=8)),
    )
    def test_any_device_partition_any_schedule_converges(
        self, shards, assignment, schedule
    ):
        """The tentpole property: ANY device partition (including all
        devices on one shard) under ANY exchange schedule converges,
        after a final round, bit for bit to the one-shot batch fold."""
        records = shop_records()
        devices = sorted({r.device_id for r in records})
        shard_of = {
            device: assignment[i] % shards
            for i, device in enumerate(devices)
        }
        cluster = make_cluster(
            shards=shards,
            shard_router=lambda record, count: shard_of[record.device_id],
            exchange_interval=None,
        )
        reference = Engine(
            Translator(make_two_shop_dsm()), EngineConfig(chunk_size=2)
        ).translate_batch(
            list(
                sequence_stream(RecordStream(iter(records)), WINDOW_SECONDS)
            )
        )
        with cluster:
            windows = windowed_records(
                RecordStream(iter(records)), WINDOW_SECONDS
            )
            for index, window in enumerate(windows):
                cluster.process_window(window, venue_id="east")
                if index in schedule:
                    cluster.exchange_now()
            cluster.exchange_now()
            merged = cluster.merged_knowledge("east")
            assert merged == reference.knowledge
            for shard in cluster.shards:
                store = shard.store("east")
                if store is not None:
                    assert store.knowledge == merged


# ----------------------------------------------------------------------
# Stats and window results
# ----------------------------------------------------------------------
class TestClusterStats:
    def test_aggregates_and_renders(self):
        cluster = make_cluster(shards=2, exchange_interval=1)
        with cluster:
            window = cluster.process_window(shop_records(), venue_id="east")
            stats = cluster.stats
        assert window.records == len(shop_records())
        assert window.sequences == sum(
            w.sequences for w in window.shards.values()
        )
        assert window.semantics == sum(
            w.semantics for w in window.shards.values()
        )
        assert window.exchange is not None
        assert stats.windows == 1
        assert stats.records == sum(s.records for s in stats.per_shard)
        assert stats.records_per_second > 0
        assert stats.windows_per_second > 0
        table = stats.format_table()
        assert "cluster: 2 shards" in table
        assert "exchange: 1 rounds" in table
        assert "shard 0" in table
        assert "merged knowledge" in table

    def test_single_shard_cluster_degenerates_to_live_service(self, reference):
        cluster = make_cluster(shards=1, exchange_interval=1)
        with cluster:
            cluster.run_stream(
                RecordStream(iter(shop_records())), venue_id="east"
            )
            assert cluster.merged_knowledge("east") == reference.knowledge
            assert cluster.shards[0].knowledge("east") == reference.knowledge

    def test_str_forms(self):
        cluster = make_cluster(shards=2)
        assert "2 shards" in str(cluster)
        assert "KnowledgeExchange" in str(cluster.exchange)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestServeSharded:
    def test_serve_with_shards(self, tmp_path, capsys):
        from repro.cli import main as cli_main
        from repro.config import SourceConfig, TranslationTaskConfig, save_task
        from repro.dsm import save_dsm

        data = tmp_path / "data"
        data.mkdir()
        code = cli_main(
            ["simulate", "--devices", "3", "--floors", "1",
             "--out", str(data), "--seed", "5"]
        )
        assert code == 0
        config_path = tmp_path / "task.json"
        save_task(
            TranslationTaskConfig(
                dsm_path=str(data / "mall-dsm.json"),
                sources=[SourceConfig("csv", str(data / "positioning.csv"))],
            ),
            config_path,
        )
        out = tmp_path / "served"
        code = cli_main(
            [
                "serve", f"mall={config_path}",
                "--window-seconds", "3600",
                "--shards", "2",
                "--exchange-interval", "2",
                "--out", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "cluster: 2 shards" in captured
        assert "finalized mall:" in captured
        assert list((out / "mall").glob("*.json"))

    def test_serve_rejects_bad_shard_flags(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["serve", "v=whatever.json", "--shards", "0"]) == 1
        assert (
            cli_main(
                ["serve", "v=whatever.json", "--shards", "2",
                 "--exchange-interval", "0"]
            )
            == 1
        )
        err = capsys.readouterr().err
        assert "--shards" in err
        assert "--exchange-interval" in err

    def test_serve_sharded_rejects_retiring_retention(
        self, tmp_path, capsys
    ):
        from repro.cli import main as cli_main
        from repro.config import SourceConfig, TranslationTaskConfig, save_task

        data = tmp_path / "data"
        data.mkdir()
        assert cli_main(
            ["simulate", "--devices", "1", "--floors", "1",
             "--out", str(data), "--seed", "6"]
        ) == 0
        config_path = tmp_path / "task.json"
        save_task(
            TranslationTaskConfig(
                dsm_path=str(data / "mall-dsm.json"),
                sources=[SourceConfig("csv", str(data / "positioning.csv"))],
            ),
            config_path,
        )
        code = cli_main(
            ["serve", f"mall={config_path}", "--shards", "2",
             "--retention", "window:4"]
        )
        assert code == 1
        assert "unbounded retention" in capsys.readouterr().err
