"""Unit tests for Segment and orientation."""

import pytest

from repro.errors import GeometryError
from repro.geometry import Point, Segment, orientation


def seg(ax, ay, bx, by, floor=1):
    return Segment(Point(ax, ay, floor), Point(bx, by, floor))


class TestSegmentBasics:
    def test_cross_floor_rejected(self):
        with pytest.raises(GeometryError):
            Segment(Point(0, 0, 1), Point(1, 1, 2))

    def test_length(self):
        assert seg(0, 0, 3, 4).length == 5.0

    def test_midpoint(self):
        assert seg(0, 0, 4, 2).midpoint == Point(2, 1)

    def test_point_at(self):
        assert seg(0, 0, 10, 0).point_at(0.3) == Point(3, 0)

    def test_closest_point_inside(self):
        assert seg(0, 0, 10, 0).closest_point_to(Point(4, 5)) == Point(4, 0)

    def test_closest_point_clamps_to_endpoint(self):
        assert seg(0, 0, 10, 0).closest_point_to(Point(-5, 3)) == Point(0, 0)

    def test_distance_to_point(self):
        assert seg(0, 0, 10, 0).distance_to_point(Point(5, 2)) == 2.0

    def test_contains_point_on_segment(self):
        assert seg(0, 0, 10, 10).contains_point(Point(5, 5))

    def test_contains_point_off_segment(self):
        assert not seg(0, 0, 10, 10).contains_point(Point(5, 5.1))

    def test_contains_point_other_floor(self):
        assert not seg(0, 0, 10, 10).contains_point(Point(5, 5, 2))


class TestSegmentIntersection:
    def test_crossing(self):
        hit = seg(0, 0, 10, 10).intersection(seg(0, 10, 10, 0))
        assert hit is not None and hit.almost_equals(Point(5, 5))

    def test_parallel_non_collinear(self):
        assert seg(0, 0, 10, 0).intersection(seg(0, 1, 10, 1)) is None

    def test_collinear_overlapping(self):
        hit = seg(0, 0, 10, 0).intersection(seg(5, 0, 15, 0))
        assert hit is not None and 5 <= hit.x <= 10 and hit.y == 0

    def test_collinear_disjoint(self):
        assert seg(0, 0, 1, 0).intersection(seg(2, 0, 3, 0)) is None

    def test_touching_at_endpoint(self):
        hit = seg(0, 0, 5, 5).intersection(seg(5, 5, 10, 0))
        assert hit is not None and hit.almost_equals(Point(5, 5), 1e-6)

    def test_near_miss(self):
        assert not seg(0, 0, 4.99, 4.99).intersects(seg(5, 5.01, 10, 10))

    def test_different_floors_never_intersect(self):
        a = seg(0, 0, 10, 10, floor=1)
        b = seg(0, 10, 10, 0, floor=2)
        assert a.intersection(b) is None

    def test_t_shape(self):
        hit = seg(0, 0, 10, 0).intersection(seg(5, -5, 5, 0))
        assert hit is not None and hit.almost_equals(Point(5, 0), 1e-6)


class TestOrientation:
    def test_counter_clockwise(self):
        assert orientation(Point(0, 0), Point(1, 0), Point(1, 1)) == 1

    def test_clockwise(self):
        assert orientation(Point(0, 0), Point(1, 1), Point(1, 0)) == -1

    def test_collinear(self):
        assert orientation(Point(0, 0), Point(1, 1), Point(2, 2)) == 0
