"""Unit tests for the GPS-era baselines and the assessment metrics."""

import pytest

from repro.core import (
    DistanceOnlyGapFiller,
    NearestRegionAnnotator,
    StopMoveConfig,
    StopMoveReconstructor,
    Translator,
    score_gap_fill,
    score_positions,
    score_semantics,
)
from repro.core.semantics import (
    EVENT_PASS_BY,
    EVENT_STAY,
    MobilitySemantic,
    MobilitySemanticsSequence,
)
from repro.positioning import inject_gaussian_noise
from repro.timeutil import TimeRange

from .conftest import stationary_sequence, walk_sequence
from .test_annotator import shopping_trip


def triplet(event, region_id, start, end, **kwargs):
    return MobilitySemantic(
        event=event, region_id=region_id, region_name=region_id,
        time_range=TimeRange(start, end), **kwargs,
    )


class TestStopMoveBaseline:
    def test_detects_stops(self, two_shop_shared):
        reconstructor = StopMoveReconstructor(two_shop_shared)
        semantics = reconstructor.translate(shopping_trip())
        stays = [s for s in semantics if s.event == EVENT_STAY]
        assert {s.region_name for s in stays} >= {"Adidas", "Cashier"}

    def test_pure_walk_no_stops(self, two_shop_shared):
        reconstructor = StopMoveReconstructor(two_shop_shared)
        seq = walk_sequence(points=[(1 + i * 1.5, 5, 1) for i in range(20)])
        semantics = reconstructor.translate(seq)
        assert all(s.event == EVENT_PASS_BY for s in semantics)

    def test_noise_filter_drops_straightline_jumps(self, two_shop_shared):
        reconstructor = StopMoveReconstructor(two_shop_shared)
        seq = stationary_sequence(at=(5, 15, 1), count=30)
        noisy = inject_gaussian_noise(seq, 0.2, seed=1)
        semantics = reconstructor.translate(noisy)
        assert len(semantics) >= 1
        assert semantics[0].event == EVENT_STAY

    def test_config_validation(self):
        with pytest.raises(Exception):
            StopMoveConfig(stop_tolerance_distance=0)

    def test_worse_than_trips_on_noisy_data(self, mall3, simulated):
        """The paper's motivating claim, measured."""
        trips_result = Translator(mall3).translate(simulated.raw)
        trips_score = score_semantics(
            trips_result.semantics, simulated.truth_semantics
        )
        baseline = StopMoveReconstructor(mall3).translate(simulated.raw)
        baseline_score = score_semantics(baseline, simulated.truth_semantics)
        assert (
            trips_score.region_time_accuracy
            >= baseline_score.region_time_accuracy - 0.02
        )


class TestNearestRegionBaseline:
    def test_run_length_semantics(self, two_shop_shared):
        annotator = NearestRegionAnnotator(two_shop_shared)
        semantics = annotator.translate(shopping_trip())
        names = [s.region_name for s in semantics]
        assert names[0] == "Adidas" and names[-1] == "Cashier"

    def test_stay_threshold(self, two_shop_shared):
        annotator = NearestRegionAnnotator(two_shop_shared, stay_threshold=1e6)
        semantics = annotator.translate(shopping_trip())
        assert all(s.event == EVENT_PASS_BY for s in semantics)

    def test_validation(self, two_shop_shared):
        with pytest.raises(Exception):
            NearestRegionAnnotator(two_shop_shared, stay_threshold=0)


class TestDistanceOnlyGapFiller:
    def test_fills_with_shortest_path(self, two_shop_shared):
        filler = DistanceOnlyGapFiller(two_shop_shared.topology)
        original = MobilitySemanticsSequence(
            "d",
            [
                triplet(EVENT_STAY, "r-adidas", 0, 600),
                triplet(EVENT_STAY, "r-nike", 900, 1500),
            ],
        )
        filled = filler.complement(original)
        assert filled.region_ids == ["r-adidas", "r-hall", "r-nike"]
        inferred = [s for s in filled if s.inferred]
        assert len(inferred) == 1
        assert inferred[0].event == EVENT_PASS_BY

    def test_short_gaps_untouched(self, two_shop_shared):
        filler = DistanceOnlyGapFiller(two_shop_shared.topology)
        original = MobilitySemanticsSequence(
            "d",
            [
                triplet(EVENT_STAY, "r-adidas", 0, 600),
                triplet(EVENT_PASS_BY, "r-hall", 650, 700),
            ],
        )
        assert len(filler.complement(original)) == 2


class TestScorePositions:
    def test_perfect_match(self, simulated):
        score = score_positions(simulated.ground_truth, simulated.ground_truth)
        assert score.rmse == 0.0
        assert score.floor_accuracy == 1.0
        assert score.matched_records == len(simulated.ground_truth)

    def test_noise_increases_rmse(self, simulated):
        noisy = inject_gaussian_noise(simulated.ground_truth, 2.0, seed=0)
        score = score_positions(noisy, simulated.ground_truth)
        assert 1.0 < score.rmse < 4.0
        assert score.mean_error > 0

    def test_unmatched_timestamps_ignored(self):
        a = walk_sequence("d", interval=5)
        b = walk_sequence("d", interval=7)
        score = score_positions(a, b)
        assert score.matched_records < len(a)


class TestScoreSemantics:
    TRUTH = MobilitySemanticsSequence(
        "d",
        [
            triplet(EVENT_STAY, "A", 0, 100),
            triplet(EVENT_PASS_BY, "B", 110, 130),
            triplet(EVENT_STAY, "C", 140, 300),
        ],
    )

    def test_perfect_output(self):
        score = score_semantics(self.TRUTH, self.TRUTH)
        assert score.region_time_accuracy == pytest.approx(1.0)
        assert score.event_accuracy == pytest.approx(1.0)
        assert score.triplet_f1 == 1.0
        assert score.edit_distance == 0
        assert score.triplet_ratio == 1.0

    def test_wrong_region_penalized(self):
        output = MobilitySemanticsSequence(
            "d",
            [
                triplet(EVENT_STAY, "X", 0, 100),
                triplet(EVENT_PASS_BY, "B", 110, 130),
                triplet(EVENT_STAY, "C", 140, 300),
            ],
        )
        score = score_semantics(output, self.TRUTH)
        assert score.region_time_accuracy < 0.8
        assert score.edit_distance == 1

    def test_wrong_event_only_hits_event_accuracy(self):
        output = MobilitySemanticsSequence(
            "d",
            [
                triplet(EVENT_PASS_BY, "A", 0, 100),  # should be stay
                triplet(EVENT_PASS_BY, "B", 110, 130),
                triplet(EVENT_STAY, "C", 140, 300),
            ],
        )
        score = score_semantics(output, self.TRUTH)
        assert score.region_time_accuracy == pytest.approx(1.0)
        assert score.event_accuracy < 1.0

    def test_empty_output(self):
        empty = MobilitySemanticsSequence("d", [])
        score = score_semantics(empty, self.TRUTH)
        assert score.region_time_accuracy == 0.0
        assert score.triplet_recall == 0.0

    def test_fragmented_output_hurts_precision_not_recall(self):
        fragments = MobilitySemanticsSequence(
            "d",
            [
                triplet(EVENT_STAY, "A", 0, 45),
                triplet(EVENT_STAY, "A", 50, 100),
                triplet(EVENT_PASS_BY, "B", 110, 130),
                triplet(EVENT_STAY, "C", 140, 300),
            ],
        )
        score = score_semantics(fragments, self.TRUTH)
        assert score.triplet_ratio > 1.0
        assert score.triplet_precision < 1.0


class TestScoreGapFill:
    def test_correct_inference_counted(self):
        truth = MobilitySemanticsSequence(
            "d",
            [
                triplet(EVENT_STAY, "A", 0, 100),
                triplet(EVENT_PASS_BY, "H", 100, 160),
                triplet(EVENT_STAY, "B", 160, 300),
            ],
        )
        output = MobilitySemanticsSequence(
            "d",
            [
                triplet(EVENT_STAY, "A", 0, 100),
                triplet(EVENT_PASS_BY, "H", 105, 155, inferred=True),
                triplet(EVENT_STAY, "B", 160, 300),
            ],
        )
        score = score_gap_fill(output, truth)
        assert score.inferred_count == 1
        assert score.correct_region_count == 1
        assert score.region_precision == 1.0

    def test_wrong_inference_counted(self):
        truth = MobilitySemanticsSequence(
            "d", [triplet(EVENT_STAY, "A", 0, 300)]
        )
        output = MobilitySemanticsSequence(
            "d", [triplet(EVENT_PASS_BY, "Z", 50, 100, inferred=True)]
        )
        score = score_gap_fill(output, truth)
        assert score.region_precision == 0.0

    def test_no_inferred(self):
        truth = MobilitySemanticsSequence("d", [triplet(EVENT_STAY, "A", 0, 10)])
        assert score_gap_fill(truth, truth).inferred_count == 0
