"""Test suite package marker.

Required so pytest imports test modules as ``tests.<name>`` and the
``from .conftest import ...`` helper imports resolve.
"""
