"""Unit tests for features, event identification and spatial matching."""

import numpy as np
import pytest

from repro.core.annotation import (
    FEATURE_NAMES,
    EventIdentifier,
    HeuristicEventIdentifier,
    SpatialMatcher,
    extract_features,
    feature_index,
)
from repro.core.semantics import EVENT_PASS_BY, EVENT_STAY
from repro.errors import AnnotationError, ModelNotFittedError
from repro.events import LabeledSegment, TrainingSet

from .conftest import stationary_sequence, walk_sequence


class TestFeatures:
    def test_width_matches_names(self):
        seq = walk_sequence()
        assert extract_features(list(seq.records)).shape == (len(FEATURE_NAMES),)

    def test_feature_index(self):
        assert FEATURE_NAMES[feature_index("mean_speed")] == "mean_speed"
        with pytest.raises(AnnotationError):
            feature_index("bogus")

    def test_empty_rejected(self):
        with pytest.raises(AnnotationError):
            extract_features([])

    def test_single_record_finite(self):
        seq = walk_sequence()
        features = extract_features([seq.records[0]])
        assert np.all(np.isfinite(features))

    def test_dwell_vs_walk_separable(self):
        dwell = extract_features(list(stationary_sequence(count=30).records))
        walk = extract_features(
            list(walk_sequence(points=[(i * 6.0, 0, 1) for i in range(30)]).records)
        )
        speed = feature_index("mean_speed")
        straight = feature_index("straightness")
        variance = feature_index("location_variance")
        assert dwell[speed] < walk[speed]
        assert dwell[straight] < walk[straight]
        assert dwell[variance] < walk[variance]

    def test_duration_and_count(self):
        seq = walk_sequence(points=[(i, 0, 1) for i in range(5)], interval=10)
        features = extract_features(list(seq.records))
        assert features[feature_index("duration")] == 40.0
        assert features[feature_index("record_count")] == 5.0


def make_training(stays=10, passes=10):
    training = TrainingSet()
    for i in range(stays):
        seq = stationary_sequence(f"s{i}", count=25, seed=i)
        training.add(LabeledSegment(seq.device_id, EVENT_STAY, tuple(seq.records)))
    for i in range(passes):
        seq = walk_sequence(
            f"p{i}", points=[(j * 6.0, i, 1) for j in range(15)]
        )
        training.add(
            LabeledSegment(seq.device_id, EVENT_PASS_BY, tuple(seq.records))
        )
    return training


class TestEventIdentifier:
    def test_untrained_identify_raises(self):
        with pytest.raises(ModelNotFittedError):
            EventIdentifier("logistic").identify(list(walk_sequence().records))

    def test_unknown_model_name(self):
        with pytest.raises(AnnotationError):
            EventIdentifier("svm")

    @pytest.mark.parametrize(
        "model", ["logistic", "tree", "forest", "knn", "naive-bayes"]
    )
    def test_learns_stay_vs_pass_by(self, model):
        identifier = EventIdentifier(model, seed=0).train(make_training())
        stay = identifier.identify(
            list(stationary_sequence("q", count=25, seed=77).records)
        )
        move = identifier.identify(
            list(walk_sequence("q", points=[(i * 6.0, 3, 1) for i in range(15)]).records)
        )
        assert stay.event == EVENT_STAY
        assert move.event == EVENT_PASS_BY
        assert 0.0 <= stay.confidence <= 1.0

    def test_known_events(self):
        identifier = EventIdentifier("logistic")
        assert identifier.known_events == []
        identifier.train(make_training())
        assert set(identifier.known_events) == {EVENT_STAY, EVENT_PASS_BY}

    def test_custom_classifier_instance(self):
        from repro.learning import GaussianNB

        identifier = EventIdentifier(GaussianNB()).train(make_training())
        assert identifier.is_trained


class TestHeuristicIdentifier:
    def test_always_trained(self):
        assert HeuristicEventIdentifier().is_trained

    def test_dwell_is_stay(self):
        heuristic = HeuristicEventIdentifier()
        prediction = heuristic.identify(
            list(stationary_sequence(count=30).records)
        )
        assert prediction.event == EVENT_STAY
        assert prediction.confidence > 0.5

    def test_walk_is_pass_by(self):
        heuristic = HeuristicEventIdentifier()
        prediction = heuristic.identify(
            list(walk_sequence(points=[(i * 6.0, 0, 1) for i in range(15)]).records)
        )
        assert prediction.event == EVENT_PASS_BY

    def test_short_dwell_not_stay(self):
        heuristic = HeuristicEventIdentifier(min_stay_duration=120.0)
        prediction = heuristic.identify(
            list(stationary_sequence(count=5).records)
        )
        assert prediction.event == EVENT_PASS_BY

    def test_known_events(self):
        assert set(HeuristicEventIdentifier().known_events) == {
            EVENT_STAY, EVENT_PASS_BY,
        }


class TestSpatialMatcher:
    def test_dwell_matches_containing_region(self, two_shop_shared):
        matcher = SpatialMatcher(two_shop_shared)
        records = list(stationary_sequence(at=(5, 15, 1), count=20).records)
        match = matcher.match(records)
        assert match is not None and match.region_name == "Adidas"
        assert match.coverage > 0.9

    def test_majority_wins(self, two_shop_shared):
        matcher = SpatialMatcher(two_shop_shared)
        adidas = list(stationary_sequence(at=(5, 15, 1), count=20).records)
        nike = list(
            stationary_sequence(at=(15, 15, 1), count=3, start=100.0).records
        )
        match = matcher.match(adidas + nike)
        assert match.region_name == "Adidas"

    def test_duration_weighting_beats_count(self, two_shop_shared):
        # 3 records spanning 300 s in Adidas vs 10 records spanning 10 s in
        # Nike: time in Adidas dominates.
        matcher = SpatialMatcher(two_shop_shared)
        adidas = list(
            stationary_sequence(at=(5, 15, 1), count=3, interval=150.0).records
        )
        nike = list(
            stationary_sequence(
                at=(15, 15, 1), count=10, interval=1.0, start=500.0
            ).records
        )
        match = matcher.match(adidas + nike)
        assert match.region_name == "Adidas"

    def test_no_region_far_away_is_none(self, two_shop_shared):
        matcher = SpatialMatcher(two_shop_shared, snap_distance=2.0)
        records = list(stationary_sequence(at=(200, 200, 1), count=5).records)
        assert matcher.match(records) is None

    def test_nearest_fallback(self, two_shop_shared):
        matcher = SpatialMatcher(two_shop_shared, snap_distance=50.0)
        # Just outside the building, nearest anchor is the hall's.
        records = list(stationary_sequence(at=(-3, 5, 1), count=5).records)
        match = matcher.match(records)
        assert match is not None
        assert match.coverage == 0.0

    def test_empty_records(self, two_shop_shared):
        assert SpatialMatcher(two_shop_shared).match([]) is None

    def test_single_record(self, two_shop_shared):
        matcher = SpatialMatcher(two_shop_shared)
        records = list(stationary_sequence(at=(15, 15, 1), count=1).records)
        match = matcher.match(records)
        assert match.region_name == "Nike"

    def test_negative_snap_rejected(self, two_shop_shared):
        with pytest.raises(ValueError):
            SpatialMatcher(two_shop_shared, snap_distance=-1)
