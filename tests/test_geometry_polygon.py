"""Unit tests for Polygon."""

import pytest

from repro.errors import GeometryError
from repro.geometry import Point, Polygon


@pytest.fixture
def unit_square():
    return Polygon.rectangle(0, 0, 10, 10)


@pytest.fixture
def l_shape():
    # An L: 10x10 square with the top-right 5x5 quadrant removed.
    return Polygon(
        [
            Point(0, 0), Point(10, 0), Point(10, 5), Point(5, 5),
            Point(5, 10), Point(0, 10),
        ]
    )


class TestConstruction:
    def test_too_few_vertices(self):
        with pytest.raises(GeometryError):
            Polygon([Point(0, 0), Point(1, 1)])

    def test_mixed_floors_rejected(self):
        with pytest.raises(GeometryError):
            Polygon([Point(0, 0, 1), Point(1, 0, 1), Point(1, 1, 2)])

    def test_repeated_closing_vertex_dropped(self):
        poly = Polygon([Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 0)])
        assert len(poly.vertices) == 3

    def test_rectangle_validation(self):
        with pytest.raises(GeometryError):
            Polygon.rectangle(5, 5, 5, 10)

    def test_regular_polygon_area_approaches_circle(self):
        import math

        poly = Polygon.regular(Point(0, 0), 10.0, 64)
        assert poly.area == pytest.approx(math.pi * 100, rel=0.01)


class TestMeasures:
    def test_area(self, unit_square):
        assert unit_square.area == 100.0

    def test_l_shape_area(self, l_shape):
        assert l_shape.area == 75.0

    def test_signed_area_winding(self, unit_square):
        assert unit_square.signed_area > 0  # rectangle() is CCW
        reversed_poly = Polygon(tuple(reversed(unit_square.vertices)))
        assert reversed_poly.signed_area < 0

    def test_normalized_rewinds(self, unit_square):
        clockwise = Polygon(tuple(reversed(unit_square.vertices)))
        assert clockwise.normalized().signed_area > 0

    def test_perimeter(self, unit_square):
        assert unit_square.perimeter == 40.0

    def test_centroid(self, unit_square):
        assert unit_square.centroid.almost_equals(Point(5, 5))

    def test_centroid_l_shape(self, l_shape):
        c = l_shape.centroid
        # Centroid of the L leans towards the filled corner.
        assert c.x < 5 or c.y < 5


class TestPredicates:
    def test_contains_interior(self, unit_square):
        assert unit_square.contains_point(Point(5, 5))

    def test_contains_boundary_default(self, unit_square):
        assert unit_square.contains_point(Point(0, 5))

    def test_boundary_excluded_when_asked(self, unit_square):
        assert not unit_square.contains_point(
            Point(0, 5), include_boundary=False
        )

    def test_outside(self, unit_square):
        assert not unit_square.contains_point(Point(11, 5))

    def test_other_floor(self, unit_square):
        assert not unit_square.contains_point(Point(5, 5, 2))

    def test_l_shape_concave_notch(self, l_shape):
        assert not l_shape.contains_point(Point(7.5, 7.5))
        assert l_shape.contains_point(Point(2.5, 7.5))
        assert l_shape.contains_point(Point(7.5, 2.5))

    def test_is_simple(self, unit_square, l_shape):
        assert unit_square.is_simple()
        assert l_shape.is_simple()

    def test_bowtie_not_simple(self):
        bowtie = Polygon([Point(0, 0), Point(10, 10), Point(10, 0), Point(0, 10)])
        assert not bowtie.is_simple()

    def test_convexity(self, unit_square, l_shape):
        assert unit_square.is_convex()
        assert not l_shape.is_convex()

    def test_distance_inside_is_zero(self, unit_square):
        assert unit_square.distance_to_point(Point(5, 5)) == 0.0

    def test_distance_outside(self, unit_square):
        assert unit_square.distance_to_point(Point(13, 5)) == 3.0

    def test_boundary_distance_inside(self, unit_square):
        assert unit_square.boundary_distance(Point(5, 5)) == 5.0


class TestPolygonPolygon:
    def test_overlapping(self, unit_square):
        other = Polygon.rectangle(5, 5, 15, 15)
        assert unit_square.intersects(other)

    def test_disjoint(self, unit_square):
        other = Polygon.rectangle(20, 20, 30, 30)
        assert not unit_square.intersects(other)

    def test_touching_edge(self, unit_square):
        other = Polygon.rectangle(10, 0, 20, 10)
        assert unit_square.intersects(other)

    def test_containment(self, unit_square):
        inner = Polygon.rectangle(2, 2, 8, 8)
        assert unit_square.intersects(inner)
        assert unit_square.contains_polygon(inner)
        assert not inner.contains_polygon(unit_square)

    def test_different_floors_disjoint(self, unit_square):
        other = Polygon.rectangle(0, 0, 10, 10, floor=2)
        assert not unit_square.intersects(other)

    def test_shared_boundary_adjacent_rooms(self):
        left = Polygon.rectangle(0, 0, 10, 10)
        right = Polygon.rectangle(10, 0, 20, 10)
        shared = left.shared_boundary_with(right)
        assert len(shared) == 1
        assert shared[0].length == pytest.approx(10.0, abs=0.1)


class TestTransforms:
    def test_translate(self, unit_square):
        moved = unit_square.translate(5, -2)
        assert moved.centroid.almost_equals(Point(10, 3))

    def test_with_floor(self, unit_square):
        assert unit_square.with_floor(4).floor == 4

    def test_sample_interior_point(self, l_shape):
        point = l_shape.sample_interior_point()
        assert l_shape.contains_point(point, include_boundary=False)
