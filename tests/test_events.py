"""Unit tests for event patterns, the Event Editor and training sets."""

import numpy as np
import pytest

from repro.core.annotation import extract_features
from repro.errors import AnnotationError
from repro.events import (
    PASS_BY,
    STAY,
    EventEditor,
    LabeledSegment,
    PatternRegistry,
    TrainingSet,
)
from repro.timeutil import TimeRange

from .conftest import stationary_sequence, walk_sequence


class TestPatternRegistry:
    def test_builtins_present(self):
        registry = PatternRegistry()
        assert STAY in registry and PASS_BY in registry
        assert registry.get(STAY).builtin

    def test_register_custom(self):
        registry = PatternRegistry()
        pattern = registry.register("queue", "waits in a line")
        assert not pattern.builtin
        assert registry.names == [PASS_BY, STAY, "queue"]

    def test_duplicate_rejected(self):
        registry = PatternRegistry()
        with pytest.raises(AnnotationError):
            registry.register(STAY)

    def test_unknown_lookup(self):
        with pytest.raises(AnnotationError):
            PatternRegistry().get("ghost")


class TestEventEditor:
    def test_designate_by_index(self):
        editor = EventEditor()
        seq = walk_sequence()
        designation = editor.designate(seq, STAY, 0, 5)
        assert designation.record_count == 5
        assert len(editor) == 1
        assert editor.training_set().labels == [STAY]

    def test_designate_unknown_pattern(self):
        editor = EventEditor()
        with pytest.raises(AnnotationError):
            editor.designate(walk_sequence(), "ghost", 0, 5)

    def test_designate_bad_range(self):
        editor = EventEditor()
        seq = walk_sequence()
        with pytest.raises(AnnotationError):
            editor.designate(seq, STAY, 5, 2)
        with pytest.raises(AnnotationError):
            editor.designate(seq, STAY, 0, 100)
        with pytest.raises(AnnotationError):
            editor.designate(seq, STAY, 3, 4)  # single record

    def test_designate_time(self):
        editor = EventEditor()
        seq = walk_sequence(interval=5)
        designation = editor.designate_time(seq, PASS_BY, TimeRange(0, 20))
        assert designation.record_count == 5

    def test_designate_time_too_narrow(self):
        editor = EventEditor()
        with pytest.raises(AnnotationError):
            editor.designate_time(walk_sequence(), STAY, TimeRange(0, 1))

    def test_designate_from_annotations_skips_unusable(self):
        editor = EventEditor()
        seq = walk_sequence(interval=5)
        made = editor.designate_from_annotations(
            seq,
            [(STAY, TimeRange(0, 20)), (PASS_BY, TimeRange(1000, 2000))],
        )
        assert len(made) == 1

    def test_define_pattern_then_designate(self):
        editor = EventEditor()
        editor.define_pattern("browse")
        editor.designate(walk_sequence(), "browse", 0, 4)
        assert editor.training_set().label_counts() == {"browse": 1}

    def test_browse_sample_deterministic(self):
        sequences = [walk_sequence(f"dev{i}") for i in range(10)]
        a = EventEditor.browse_sample(sequences, 3, seed=1)
        b = EventEditor.browse_sample(sequences, 3, seed=1)
        assert [s.device_id for s in a] == [s.device_id for s in b]
        assert len(a) == 3

    def test_browse_sample_all_when_count_large(self):
        sequences = [walk_sequence("a"), walk_sequence("b")]
        assert len(EventEditor.browse_sample(sequences, 10)) == 2

    def test_clear(self):
        editor = EventEditor()
        editor.designate(walk_sequence(), STAY, 0, 5)
        editor.clear()
        assert len(editor) == 0
        assert STAY in editor.registry  # patterns survive


class TestTrainingSet:
    def _set(self, stays=3, passes=3):
        training = TrainingSet()
        for i in range(stays):
            seq = stationary_sequence(f"s{i}", seed=i)
            training.add(
                LabeledSegment(seq.device_id, STAY, tuple(seq.records))
            )
        for i in range(passes):
            seq = walk_sequence(f"p{i}")
            training.add(
                LabeledSegment(seq.device_id, PASS_BY, tuple(seq.records))
            )
        return training

    def test_label_counts(self):
        assert self._set(2, 3).label_counts() == {STAY: 2, PASS_BY: 3}

    def test_to_features_shape(self):
        from repro.core.annotation import FEATURE_NAMES

        features, labels = self._set().to_features(extract_features)
        assert features.shape == (6, len(FEATURE_NAMES))
        assert len(labels) == 6
        assert np.all(np.isfinite(features))

    def test_to_features_empty_raises(self):
        with pytest.raises(AnnotationError):
            TrainingSet().to_features(extract_features)

    def test_segment_needs_two_records(self):
        seq = walk_sequence()
        with pytest.raises(AnnotationError):
            LabeledSegment("d", STAY, (seq.records[0],))

    def test_subset_stratified(self):
        training = self._set(5, 5)
        subset = training.subset(4, seed=0)
        counts = subset.label_counts()
        assert len(subset) == 4
        assert counts.get(STAY, 0) >= 1 and counts.get(PASS_BY, 0) >= 1

    def test_subset_full_when_large(self):
        training = self._set(2, 2)
        assert len(training.subset(100)) == 4

    def test_subset_validation(self):
        with pytest.raises(AnnotationError):
            self._set().subset(0)
