"""Unit tests for the Configurator (task configs) and the CLI."""

import json

import pytest

from repro.cli import main as cli_main
from repro.config import (
    SelectionConfig,
    SourceConfig,
    TranslationTaskConfig,
    load_task,
    run_task,
    save_task,
    select_sequences,
)
from repro.dsm import save_dsm
from repro.errors import ConfigError
from repro.positioning import write_csv
from repro.timeutil import HOUR


class TestConfigSchema:
    def test_defaults_valid(self):
        config = TranslationTaskConfig(dsm_path="model.json")
        assert config.event_model == "heuristic"

    def test_validation(self):
        with pytest.raises(ConfigError):
            TranslationTaskConfig(dsm_path="")
        with pytest.raises(ConfigError):
            TranslationTaskConfig(dsm_path="x", event_model="svm")
        with pytest.raises(ConfigError):
            TranslationTaskConfig(dsm_path="x", display_point_policy="left")
        with pytest.raises(ConfigError):
            SourceConfig(kind="xml", path="x")
        with pytest.raises(ConfigError):
            SelectionConfig(daily_open=10.0)  # close missing

    def test_dict_roundtrip(self):
        config = TranslationTaskConfig(
            dsm_path="model.json",
            sources=[SourceConfig("csv", "a.csv"),
                     SourceConfig("jsonl", "b.jsonl")],
            selection=SelectionConfig(
                device_pattern="3a.*",
                floors=[1, 2],
                daily_open=10 * HOUR,
                daily_close=22 * HOUR,
                min_duration=900.0,
            ),
            event_model="forest",
            eps_space=3.5,
        )
        clone = TranslationTaskConfig.from_dict(config.to_dict())
        assert clone == config

    def test_from_dict_malformed(self):
        with pytest.raises(ConfigError):
            TranslationTaskConfig.from_dict({"sources": [{"kind": "csv"}]})

    def test_build_rule_combines(self):
        selection = SelectionConfig(
            device_pattern="3a.*", floors=[1], min_duration=60.0
        )
        rule = selection.build_rule()
        assert rule is not None

    def test_build_rule_empty(self):
        assert SelectionConfig(min_records=1).build_rule() is None

    def test_build_translator_config(self):
        config = TranslationTaskConfig(
            dsm_path="x", max_speed=3.0, eps_space=2.0, gap_threshold=200.0
        )
        translator_config = config.build_translator_config()
        assert translator_config.cleaning.max_speed == 3.0
        assert translator_config.annotation.splitter.eps_space == 2.0
        assert translator_config.complementing.gap_threshold == 200.0

    def test_file_roundtrip(self, tmp_path):
        config = TranslationTaskConfig(dsm_path="model.json")
        path = tmp_path / "task.json"
        save_task(config, path)
        assert load_task(path) == config

    def test_load_missing(self, tmp_path):
        with pytest.raises(ConfigError):
            load_task(tmp_path / "absent.json")


@pytest.fixture(scope="module")
def task_workspace(tmp_path_factory, mall3, population):
    """A DSM file + CSV data + task config on disk."""
    root = tmp_path_factory.mktemp("task")
    dsm_path = root / "mall.json"
    save_dsm(mall3, dsm_path)
    csv_path = root / "data.csv"
    records = sorted(r for d in population for r in d.raw)
    write_csv(records, csv_path)
    config = TranslationTaskConfig(
        dsm_path=str(dsm_path),
        sources=[SourceConfig("csv", str(csv_path))],
        selection=SelectionConfig(device_pattern="3a.*", min_records=10),
    )
    config_path = root / "task.json"
    save_task(config, config_path)
    return root, config, config_path


class TestRunTask:
    def test_select_sequences(self, task_workspace, population):
        _, config, _ = task_workspace
        sequences = select_sequences(config)
        assert len(sequences) == len(population)

    def test_no_sources_rejected(self):
        config = TranslationTaskConfig(dsm_path="x")
        with pytest.raises(ConfigError):
            select_sequences(config)

    def test_run_heuristic_task(self, task_workspace, population):
        _, config, _ = task_workspace
        batch = run_task(config)
        assert len(batch) == len(population)
        assert batch.total_semantics > 0

    def test_learned_model_requires_training(self, task_workspace):
        root, config, _ = task_workspace
        learned = TranslationTaskConfig.from_dict(
            {**config.to_dict(), "event_model": "forest"}
        )
        with pytest.raises(ConfigError):
            run_task(learned)

    def test_learned_model_with_training(self, task_workspace, population):
        from repro.events import EventEditor

        root, config, _ = task_workspace
        editor = EventEditor()
        for device in population[:3]:
            editor.designate_from_annotations(
                device.raw,
                [(s.event, s.time_range) for s in device.truth_semantics],
            )
        learned = TranslationTaskConfig.from_dict(
            {**config.to_dict(), "event_model": "naive-bayes"}
        )
        batch = run_task(learned, training_set=editor.training_set())
        assert batch.total_semantics > 0


class TestCli:
    def test_no_command_shows_help(self, capsys):
        assert cli_main([]) == 2

    def test_simulate_validate_render_translate(self, tmp_path, capsys):
        out = tmp_path / "data"
        code = cli_main(
            ["simulate", "--devices", "2", "--floors", "1",
             "--out", str(out), "--seed", "3"]
        )
        assert code == 0
        assert (out / "mall-dsm.json").exists()
        assert (out / "positioning.csv").exists()
        assert (out / "ground-truth.json").exists()

        assert cli_main(["validate-dsm", str(out / "mall-dsm.json")]) == 0

        svg_path = tmp_path / "floor.svg"
        assert cli_main(
            ["render", str(out / "mall-dsm.json"), "--out", str(svg_path)]
        ) == 0
        assert svg_path.read_text().endswith("</svg>")

        config = TranslationTaskConfig(
            dsm_path=str(out / "mall-dsm.json"),
            sources=[SourceConfig("csv", str(out / "positioning.csv"))],
        )
        config_path = tmp_path / "task.json"
        save_task(config, config_path)
        results = tmp_path / "results"
        assert cli_main(
            ["translate", str(config_path), "--out", str(results)]
        ) == 0
        outputs = list(results.glob("*.json"))
        assert len(outputs) == 2
        payload = json.loads(outputs[0].read_text())
        assert "semantics" in payload

    def test_serve_replays_task_configs_as_live_feeds(
        self, task_workspace, tmp_path, capsys
    ):
        """`trips serve` drives the live streaming service: per-window
        progress, cumulative stats, finalized per-device exports — one
        venue per config (here the same config twice under two ids)."""
        _, _, config_path = task_workspace
        out = tmp_path / "served"
        code = cli_main(
            [
                "serve",
                f"north={config_path}",
                f"south={config_path}",
                "--window-seconds", "7200",
                "--backend", "threads",
                "--workers", "2",
                "--out", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "window" in captured
        assert "finalized north:" in captured
        assert "finalized south:" in captured
        north = list((out / "north").glob("*.json"))
        south = list((out / "south").glob("*.json"))
        assert len(north) == len(south) > 0
        payload = json.loads(north[0].read_text())
        assert "semantics" in payload

    def test_serve_with_windowed_retention(
        self, task_workspace, tmp_path, capsys
    ):
        """`trips serve --retention window:4` runs end to end: every
        venue's knowledge store retires epochs beyond the newest four,
        and the service still finalizes and exports per-device results."""
        _, _, config_path = task_workspace
        out = tmp_path / "served-windowed"
        code = cli_main(
            [
                "serve",
                f"north={config_path}",
                "--window-seconds", "1800",
                "--retention", "window:4",
                "--adaptive-windowing",
                "--out", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "finalized north:" in captured
        assert "epochs" in captured
        assert len(list((out / "north").glob("*.json"))) > 0

    def test_serve_rejects_malformed_retention(self, task_workspace, capsys):
        _, _, config_path = task_workspace
        assert cli_main(
            ["serve", f"v={config_path}", "--retention", "window:soon"]
        ) == 1
        assert "retention" in capsys.readouterr().err

    def test_task_config_validates_knowledge_retention(self, tmp_path):
        config = TranslationTaskConfig(
            dsm_path="dsm.json", knowledge_retention="decay:8"
        )
        assert (
            TranslationTaskConfig.from_dict(config.to_dict())
            .knowledge_retention
            == "decay:8"
        )
        with pytest.raises(ConfigError):
            TranslationTaskConfig(
                dsm_path="dsm.json", knowledge_retention="window:!"
            )

    def test_serve_rejects_duplicate_venue_ids(self, task_workspace, capsys):
        _, _, config_path = task_workspace
        assert cli_main(
            ["serve", f"v={config_path}", f"v={config_path}"]
        ) == 1
        assert "duplicate venue" in capsys.readouterr().err

    def test_translate_knowledge_build_flag(
        self, task_workspace, tmp_path, capsys
    ):
        """--knowledge-build picks the engine barrier strategy; both
        strategies write identical per-device result files."""
        _, _, config_path = task_workspace
        exports = {}
        for strategy in ("rebuild", "sharded"):
            out = tmp_path / strategy
            assert cli_main(
                ["translate", str(config_path), "--backend", "serial",
                 "--knowledge-build", strategy, "--out", str(out)]
            ) == 0
            exports[strategy] = {
                path.name: path.read_bytes() for path in out.glob("*.json")
            }
        assert exports["sharded"] == exports["rebuild"]
        assert len(exports["sharded"]) > 0

    def test_knowledge_build_requires_backend(self, task_workspace, capsys):
        _, _, config_path = task_workspace
        assert cli_main(
            ["translate", str(config_path), "--knowledge-build", "sharded"]
        ) == 1
        assert "--backend" in capsys.readouterr().err

    def test_error_exit_code(self, tmp_path, capsys):
        assert cli_main(["validate-dsm", str(tmp_path / "absent.json")]) == 1
