"""Unit tests for error injection utilities."""

import pytest

from repro.errors import DataSourceError
from repro.positioning import (
    inject_dropout,
    inject_floor_errors,
    inject_gaussian_noise,
    inject_outliers,
    subsample,
)

from .conftest import walk_sequence


@pytest.fixture
def seq():
    return walk_sequence(points=[(i, 0, 1) for i in range(60)], interval=5)


class TestGaussianNoise:
    def test_zero_sigma_is_identity(self, seq):
        noisy = inject_gaussian_noise(seq, 0.0)
        assert noisy.points == seq.points

    def test_noise_perturbs_every_record(self, seq):
        noisy = inject_gaussian_noise(seq, 1.0, seed=1)
        moved = sum(
            1
            for a, b in zip(seq.points, noisy.points)
            if a.planar_distance_to(b) > 1e-9
        )
        assert moved == len(seq)

    def test_deterministic_by_seed(self, seq):
        a = inject_gaussian_noise(seq, 1.0, seed=5)
        b = inject_gaussian_noise(seq, 1.0, seed=5)
        c = inject_gaussian_noise(seq, 1.0, seed=6)
        assert a.points == b.points
        assert a.points != c.points

    def test_original_untouched(self, seq):
        before = list(seq.points)
        inject_gaussian_noise(seq, 2.0, seed=0)
        assert seq.points == before

    def test_negative_sigma_rejected(self, seq):
        with pytest.raises(DataSourceError):
            inject_gaussian_noise(seq, -1.0)


class TestFloorErrors:
    def test_rate_zero_changes_nothing(self, seq):
        corrupted, report = inject_floor_errors(seq, 0.0, [1, 2, 3])
        assert report.count == 0
        assert corrupted.floors_visited == [1]

    def test_rate_one_changes_everything(self, seq):
        corrupted, report = inject_floor_errors(seq, 1.0, [1, 2, 3], seed=2)
        assert report.count == len(seq)
        assert all(r.floor != 1 for r in corrupted)

    def test_report_indexes_match(self, seq):
        corrupted, report = inject_floor_errors(seq, 0.3, [1, 2], seed=3)
        for index in report.affected_indexes:
            assert corrupted[index].floor != seq[index].floor

    def test_needs_two_floors(self, seq):
        with pytest.raises(DataSourceError):
            inject_floor_errors(seq, 0.5, [1])

    def test_bad_rate(self, seq):
        with pytest.raises(DataSourceError):
            inject_floor_errors(seq, 1.5, [1, 2])


class TestOutliers:
    def test_outliers_jump_far(self, seq):
        corrupted, report = inject_outliers(seq, 0.2, magnitude=30, seed=4)
        assert report.count > 0
        for index in report.affected_indexes:
            jump = seq[index].location.planar_distance_to(
                corrupted[index].location
            )
            assert jump > 20.0

    def test_untouched_records_identical(self, seq):
        corrupted, report = inject_outliers(seq, 0.2, seed=4)
        affected = set(report.affected_indexes)
        for index in range(len(seq)):
            if index not in affected:
                assert corrupted[index] == seq[index]

    def test_bad_magnitude(self, seq):
        with pytest.raises(DataSourceError):
            inject_outliers(seq, 0.1, magnitude=0)


class TestDropout:
    def test_gap_removes_inner_records(self, seq):
        corrupted, report = inject_dropout(seq, gap_seconds=50, seed=5)
        assert report.count > 0
        assert len(corrupted) == len(seq) - report.count

    def test_endpoints_survive(self, seq):
        corrupted, _ = inject_dropout(seq, gap_seconds=100, gap_count=3, seed=6)
        assert corrupted[0] == seq[0]
        assert corrupted.records[-1] == seq.records[-1]

    def test_creates_temporal_gap(self, seq):
        corrupted, report = inject_dropout(seq, gap_seconds=60, seed=7)
        if report.count:
            assert corrupted.gaps_longer_than(30)

    def test_validation(self, seq):
        with pytest.raises(DataSourceError):
            inject_dropout(seq, gap_seconds=0)
        with pytest.raises(DataSourceError):
            inject_dropout(seq, gap_seconds=10, gap_count=0)


class TestSubsample:
    def test_keep_every_two(self, seq):
        thinned = subsample(seq, 2)
        assert len(thinned) == pytest.approx(len(seq) / 2, abs=1)

    def test_last_record_kept(self, seq):
        thinned = subsample(seq, 7)
        assert thinned.records[-1] == seq.records[-1]

    def test_identity(self, seq):
        assert len(subsample(seq, 1)) == len(seq)

    def test_validation(self, seq):
        with pytest.raises(DataSourceError):
            subsample(seq, 0)
