"""Unit tests for Point."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry import Point, centroid_of


class TestPoint:
    def test_paper_notation(self):
        assert str(Point(5.1, 12.7, 3)) == "(5.1, 12.7, 3F)"

    def test_default_floor_is_ground(self):
        assert Point(0, 0).floor == 1

    def test_non_finite_rejected(self):
        with pytest.raises(GeometryError):
            Point(float("nan"), 0.0)
        with pytest.raises(GeometryError):
            Point(0.0, float("inf"))

    def test_distance_same_floor(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_cross_floor_raises(self):
        with pytest.raises(GeometryError):
            Point(0, 0, 1).distance_to(Point(0, 0, 2))

    def test_planar_distance_ignores_floor(self):
        assert Point(0, 0, 1).planar_distance_to(Point(3, 4, 5)) == 5.0

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(2, 4)) == Point(1, 2)

    def test_translate(self):
        assert Point(1, 1, 2).translate(2, -1) == Point(3, 0, 2)

    def test_with_floor(self):
        assert Point(1, 1, 1).with_floor(3) == Point(1, 1, 3)

    def test_lerp_midway_snaps_to_far_floor(self):
        result = Point(0, 0, 1).lerp(Point(10, 0, 2), 0.5)
        assert result == Point(5, 0, 2)

    def test_lerp_near_start_keeps_floor(self):
        result = Point(0, 0, 1).lerp(Point(10, 0, 2), 0.25)
        assert result == Point(2.5, 0, 1)

    def test_heading_east(self):
        assert Point(0, 0).heading_to(Point(1, 0)) == 0.0

    def test_heading_north(self):
        assert Point(0, 0).heading_to(Point(0, 1)) == pytest.approx(math.pi / 2)

    def test_almost_equals_tolerance(self):
        assert Point(1, 1).almost_equals(Point(1 + 1e-10, 1))
        assert not Point(1, 1).almost_equals(Point(1.01, 1))

    def test_almost_equals_needs_same_floor(self):
        assert not Point(1, 1, 1).almost_equals(Point(1, 1, 2))

    def test_iterable(self):
        x, y = Point(3, 4)
        assert (x, y) == (3, 4)

    def test_hashable(self):
        assert len({Point(1, 2), Point(1, 2), Point(1, 3)}) == 2


class TestCentroidOf:
    def test_mean(self):
        c = centroid_of([Point(0, 0), Point(2, 0), Point(1, 3)])
        assert c == Point(1, 1)

    def test_majority_floor(self):
        c = centroid_of([Point(0, 0, 2), Point(2, 0, 2), Point(1, 3, 5)])
        assert c.floor == 2

    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            centroid_of([])
