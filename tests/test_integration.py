"""Integration tests: the full five-step workflow and cross-module flows."""

import pytest

from repro.core import (
    EventIdentifier,
    HeuristicEventIdentifier,
    Translator,
    score_gap_fill,
    score_semantics,
)
from repro.core.baselines import DistanceOnlyGapFiller, StopMoveReconstructor
from repro.dsm import dsm_from_json, dsm_to_json
from repro.events import EventEditor
from repro.positioning import (
    DataSelector,
    DurationRule,
    MemorySource,
    inject_dropout,
)
from repro.viewer import DataSourceKind, ViewerSession


class TestFiveStepWorkflow:
    """The paper's §4 workflow on simulated mall data."""

    @pytest.fixture(scope="class")
    def workflow(self, mall3, population):
        # Step (1): Data Selector.
        records = sorted(r for d in population for r in d.raw)
        selector = DataSelector(
            [MemorySource(records)], rule=DurationRule(min_seconds=600)
        )
        sequences = selector.select()
        # Step (2): the DSM round-trips through its JSON file format.
        model = dsm_from_json(dsm_to_json(mall3))
        # Step (3): Event Editor designations from three browsed devices.
        editor = EventEditor()
        for device in population[:3]:
            editor.designate_from_annotations(
                device.raw,
                [(s.event, s.time_range) for s in device.truth_semantics],
            )
        # Step (4): Translator with the learned event model.
        identifier = EventIdentifier("forest", seed=1).train(
            editor.training_set()
        )
        translator = Translator(model, identifier)
        batch = translator.translate_batch(sequences)
        return model, batch, population

    def test_all_devices_translated(self, workflow):
        _, batch, population = workflow
        assert len(batch) == len(population)

    def test_translation_quality(self, workflow):
        _, batch, population = workflow
        truth = {d.device_id: d.truth_semantics for d in population}
        scores = [
            score_semantics(result.semantics, truth[result.device_id])
            for result in batch
        ]
        mean_region = sum(s.region_time_accuracy for s in scores) / len(scores)
        mean_event = sum(s.event_accuracy for s in scores) / len(scores)
        assert mean_region >= 0.8
        assert mean_event >= 0.8

    def test_semantics_concise(self, workflow):
        _, batch, _ = workflow
        for result in batch:
            assert result.semantics.conciseness_ratio(len(result.raw)) >= 10

    def test_step5_viewer_session(self, workflow):
        model, batch, population = workflow
        result = batch.results[0]
        truth = next(
            d for d in population if d.device_id == result.device_id
        )
        session = ViewerSession(
            model, result, ground_truth=truth.ground_truth
        )
        covered = session.select_semantic(0)
        assert covered[DataSourceKind.RAW]
        svg = session.render().to_string()
        assert svg.startswith("<?xml")


class TestLearnedBeatsBaselines:
    def test_trips_vs_stop_move(self, mall3, population):
        translator = Translator(mall3)
        reconstructor = StopMoveReconstructor(mall3)
        trips_scores, baseline_scores = [], []
        for device in population:
            trips = translator.translate(device.raw).semantics
            baseline = reconstructor.translate(device.raw)
            trips_scores.append(
                score_semantics(trips, device.truth_semantics)
            )
            baseline_scores.append(
                score_semantics(baseline, device.truth_semantics)
            )
        trips_mean = sum(
            s.region_time_accuracy for s in trips_scores
        ) / len(trips_scores)
        baseline_mean = sum(
            s.region_time_accuracy for s in baseline_scores
        ) / len(baseline_scores)
        assert trips_mean > baseline_mean


class TestComplementingRecoversDropout:
    def test_knowledge_vs_distance_filling(self, mall3, population):
        degraded = [
            inject_dropout(d.raw, gap_seconds=300.0, seed=11)[0]
            for d in population
        ]
        batch = Translator(mall3).translate_batch(degraded)
        filler = DistanceOnlyGapFiller(mall3.topology)
        knowledge_correct = distance_correct = 0
        knowledge_total = distance_total = 0
        for result, device in zip(batch, population):
            k_score = score_gap_fill(result.semantics, device.truth_semantics)
            d_score = score_gap_fill(
                filler.complement(result.original_semantics),
                device.truth_semantics,
            )
            knowledge_correct += k_score.correct_region_count
            knowledge_total += k_score.inferred_count
            distance_correct += d_score.correct_region_count
            distance_total += d_score.inferred_count
        # Both may decline to infer, but whatever is inferred must not be
        # wildly wrong; knowledge-based filling is at least as precise.
        if knowledge_total and distance_total:
            assert (
                knowledge_correct / knowledge_total
                >= distance_correct / distance_total - 0.15
            )


class TestHeuristicFallbackPath:
    def test_zero_training_translation_works(self, mall3, simulated):
        translator = Translator(mall3, HeuristicEventIdentifier())
        result = translator.translate(simulated.raw)
        score = score_semantics(result.semantics, simulated.truth_semantics)
        assert score.region_time_accuracy >= 0.8

    def test_multi_floor_device_handled(self, mall3, simulated):
        assert len(simulated.raw.floors_visited) >= 2
        result = Translator(mall3).translate(simulated.raw)
        floors = {
            mall3.region_floor(s.region_id)
            for s in result.semantics
            if mall3.has_region(s.region_id)
        }
        assert len(floors) >= 2
