"""Unit tests for Polyline, Circle and BoundingBox."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry import BoundingBox, Circle, Point, Polyline, Segment


class TestPolyline:
    def test_needs_two_vertices(self):
        with pytest.raises(GeometryError):
            Polyline([Point(0, 0)])

    def test_mixed_floors_rejected(self):
        with pytest.raises(GeometryError):
            Polyline([Point(0, 0, 1), Point(1, 1, 2)])

    def test_length(self):
        line = Polyline([Point(0, 0), Point(3, 4), Point(3, 9)])
        assert line.length == 10.0

    def test_point_at_fraction(self):
        line = Polyline([Point(0, 0), Point(10, 0), Point(10, 10)])
        assert line.point_at_fraction(0.25).almost_equals(Point(5, 0))
        assert line.point_at_fraction(0.75).almost_equals(Point(10, 5))

    def test_point_at_fraction_clamped(self):
        line = Polyline([Point(0, 0), Point(10, 0)])
        assert line.point_at_fraction(-1.0) == Point(0, 0)
        assert line.point_at_fraction(2.0).almost_equals(Point(10, 0))

    def test_distance_to_point(self):
        line = Polyline([Point(0, 0), Point(10, 0)])
        assert line.distance_to_point(Point(5, 3)) == 3.0

    def test_crosses_segment_wall_check(self):
        wall = Polyline([Point(0, 5), Point(10, 5)])
        crossing = Segment(Point(5, 0), Point(5, 10))
        parallel = Segment(Point(0, 6), Point(10, 6))
        assert wall.crosses_segment(crossing)
        assert not wall.crosses_segment(parallel)

    def test_crosses_segment_other_floor(self):
        wall = Polyline([Point(0, 5), Point(10, 5)])
        other = Segment(Point(5, 0, 2), Point(5, 10, 2))
        assert not wall.crosses_segment(other)

    def test_translate(self):
        line = Polyline([Point(0, 0), Point(1, 1)]).translate(10, 0)
        assert line.vertices[0] == Point(10, 0)


class TestCircle:
    def test_positive_radius_required(self):
        with pytest.raises(GeometryError):
            Circle(Point(0, 0), 0.0)
        with pytest.raises(GeometryError):
            Circle(Point(0, 0), -2.0)

    def test_area_perimeter(self):
        circle = Circle(Point(0, 0), 2.0)
        assert circle.area == pytest.approx(4 * math.pi)
        assert circle.perimeter == pytest.approx(4 * math.pi)

    def test_contains(self):
        circle = Circle(Point(0, 0), 5.0)
        assert circle.contains_point(Point(3, 0))
        assert circle.contains_point(Point(5, 0))  # boundary
        assert not circle.contains_point(Point(5.1, 0))
        assert not circle.contains_point(Point(0, 0, 2))

    def test_boundary_excluded(self):
        circle = Circle(Point(0, 0), 5.0)
        assert not circle.contains_point(Point(5, 0), include_boundary=False)

    def test_distance(self):
        circle = Circle(Point(0, 0), 5.0)
        assert circle.distance_to_point(Point(0, 0)) == 0.0
        assert circle.distance_to_point(Point(8, 0)) == 3.0

    def test_circle_circle(self):
        a = Circle(Point(0, 0), 3.0)
        assert a.intersects_circle(Circle(Point(5, 0), 3.0))
        assert not a.intersects_circle(Circle(Point(10, 0), 3.0))
        assert not a.intersects_circle(Circle(Point(0, 0, 2), 3.0))

    def test_intersects_segment(self):
        circle = Circle(Point(0, 0), 2.0)
        assert circle.intersects_segment(Segment(Point(-5, 1), Point(5, 1)))
        assert not circle.intersects_segment(Segment(Point(-5, 3), Point(5, 3)))

    def test_to_polygon(self):
        poly = Circle(Point(3, 3), 2.0, ).to_polygon(32)
        assert poly.area == pytest.approx(math.pi * 4, rel=0.02)
        assert poly.centroid.almost_equals(Point(3, 3), 1e-6)

    def test_bounds(self):
        box = Circle(Point(5, 5), 2.0).bounds
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (3, 3, 7, 7)


class TestBoundingBox:
    def test_inverted_rejected(self):
        with pytest.raises(GeometryError):
            BoundingBox(5, 0, 0, 5)

    def test_around_points(self):
        box = BoundingBox.around([Point(1, 2), Point(5, -1), Point(3, 7)])
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (1, -1, 5, 7)

    def test_around_empty_raises(self):
        with pytest.raises(GeometryError):
            BoundingBox.around([])

    def test_dimensions(self):
        box = BoundingBox(0, 0, 3, 4)
        assert box.width == 3 and box.height == 4
        assert box.area == 12 and box.diagonal == 5.0

    def test_contains_closed(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.contains_point(Point(0, 0))
        assert box.contains_point(Point(10, 10))
        assert not box.contains_point(Point(10.01, 5))

    def test_intersects(self):
        a = BoundingBox(0, 0, 10, 10)
        assert a.intersects(BoundingBox(5, 5, 15, 15))
        assert a.intersects(BoundingBox(10, 0, 20, 10))  # touching
        assert not a.intersects(BoundingBox(11, 0, 20, 10))

    def test_union(self):
        union = BoundingBox(0, 0, 1, 1).union(BoundingBox(5, 5, 6, 6))
        assert (union.min_x, union.max_x) == (0, 6)

    def test_expand(self):
        grown = BoundingBox(0, 0, 10, 10).expand(2)
        assert (grown.min_x, grown.max_y) == (-2, 12)

    def test_expand_negative_clamps(self):
        shrunk = BoundingBox(0, 0, 2, 2).expand(-5)
        assert shrunk.width == 0 and shrunk.height == 0

    def test_corners_ccw(self):
        corners = BoundingBox(0, 0, 2, 3).corners()
        assert corners[0] == Point(0, 0)
        assert corners[2] == Point(2, 3)
        assert len(corners) == 4
