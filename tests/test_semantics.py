"""Unit tests for the mobility-semantics data model (Table 1)."""

import pytest

from repro.core.semantics import (
    EVENT_PASS_BY,
    EVENT_STAY,
    MobilitySemantic,
    MobilitySemanticsSequence,
)
from repro.errors import AnnotationError
from repro.timeutil import TimeRange, parse_clock


def triplet(event, region, start, end, **kwargs):
    return MobilitySemantic(
        event=event,
        region_id=f"r-{region.lower()}",
        region_name=region,
        time_range=TimeRange(start, end),
        **kwargs,
    )


class TestMobilitySemantic:
    def test_table1_rendering(self):
        semantic = triplet(
            EVENT_STAY, "Adidas",
            parse_clock("1:02:05pm"), parse_clock("1:18:15pm"),
        )
        assert semantic.format() == "(stay, Adidas, 1:02:05-1:18:15pm)"

    def test_validation(self):
        with pytest.raises(AnnotationError):
            triplet("", "Adidas", 0, 1)
        with pytest.raises(AnnotationError):
            MobilitySemantic(EVENT_STAY, "", "X", TimeRange(0, 1))
        with pytest.raises(AnnotationError):
            triplet(EVENT_STAY, "Adidas", 0, 1, confidence=1.5)

    def test_duration(self):
        assert triplet(EVENT_STAY, "A", 10, 70).duration == 60.0

    def test_shifted(self):
        shifted = triplet(EVENT_STAY, "A", 0, 10).shifted(100)
        assert shifted.time_range == TimeRange(100, 110)

    def test_dict_roundtrip(self):
        original = triplet(
            EVENT_PASS_BY, "Nike", 5, 15,
            confidence=0.75, inferred=True, record_indexes=(3, 4),
        )
        clone = MobilitySemantic.from_dict(original.to_dict())
        assert clone == original

    def test_from_dict_missing_key(self):
        with pytest.raises(AnnotationError):
            MobilitySemantic.from_dict({"event": EVENT_STAY})


class TestSequence:
    def _sequence(self):
        return MobilitySemanticsSequence(
            "oi",
            [
                triplet(EVENT_STAY, "Adidas", 0, 970),
                triplet(EVENT_PASS_BY, "Nike", 971, 1088),
                triplet(EVENT_STAY, "Cashier", 1089, 1320),
            ],
        )

    def test_sorted_on_construction(self):
        sequence = MobilitySemanticsSequence(
            "d",
            [triplet(EVENT_STAY, "B", 100, 200), triplet(EVENT_STAY, "A", 0, 50)],
        )
        assert sequence.region_ids == ["r-a", "r-b"]

    def test_table1_format(self):
        table = self._sequence().format_table()
        assert table.startswith("oi:")
        assert "(stay, Adidas" in table
        assert "(pass-by, Nike" in table

    def test_time_range(self):
        assert self._sequence().time_range == TimeRange(0, 1320)

    def test_empty_time_range_raises(self):
        with pytest.raises(AnnotationError):
            MobilitySemanticsSequence("d", []).time_range

    def test_events_and_regions(self):
        sequence = self._sequence()
        assert sequence.events == [EVENT_STAY, EVENT_PASS_BY, EVENT_STAY]
        assert sequence.region_ids == ["r-adidas", "r-nike", "r-cashier"]

    def test_gaps(self):
        sequence = MobilitySemanticsSequence(
            "d",
            [
                triplet(EVENT_STAY, "A", 0, 100),
                triplet(EVENT_STAY, "B", 500, 600),   # 400 s gap
                triplet(EVENT_STAY, "C", 630, 700),   # 30 s gap
            ],
        )
        gaps = sequence.gaps(threshold=60.0)
        assert len(gaps) == 1
        index, window = gaps[0]
        assert index == 0 and window == TimeRange(100, 500)

    def test_conciseness_ratio(self):
        assert self._sequence().conciseness_ratio(300) == 100.0
        assert MobilitySemanticsSequence("d", []).conciseness_ratio(10) == 0.0

    def test_inferred_count(self):
        sequence = MobilitySemanticsSequence(
            "d",
            [
                triplet(EVENT_STAY, "A", 0, 10),
                triplet(EVENT_PASS_BY, "B", 20, 30, inferred=True),
            ],
        )
        assert sequence.inferred_count == 1

    def test_json_roundtrip(self, tmp_path):
        sequence = self._sequence()
        path = tmp_path / "result.json"
        sequence.save_json(path)
        clone = MobilitySemanticsSequence.load_json(path)
        assert clone == sequence


class TestMerging:
    def test_merged_consecutive_same_event(self):
        sequence = MobilitySemanticsSequence(
            "d",
            [
                triplet(EVENT_STAY, "A", 0, 100, record_indexes=(0, 1)),
                triplet(EVENT_STAY, "A", 101, 200, record_indexes=(2, 3)),
                triplet(EVENT_STAY, "B", 300, 400),
            ],
        )
        merged = sequence.merged_consecutive()
        assert len(merged) == 2
        assert merged[0].time_range == TimeRange(0, 200)
        assert merged[0].record_indexes == (0, 1, 2, 3)

    def test_merged_consecutive_keeps_distinct_events(self):
        sequence = MobilitySemanticsSequence(
            "d",
            [
                triplet(EVENT_STAY, "A", 0, 100),
                triplet(EVENT_PASS_BY, "A", 101, 200),
            ],
        )
        assert len(sequence.merged_consecutive()) == 2

    def test_merged_same_region_majority_event(self):
        sequence = MobilitySemanticsSequence(
            "d",
            [
                triplet(EVENT_STAY, "A", 0, 300),
                triplet(EVENT_PASS_BY, "A", 310, 330),
                triplet(EVENT_STAY, "A", 340, 600),
            ],
        )
        merged = sequence.merged_same_region()
        assert len(merged) == 1
        assert merged[0].event == EVENT_STAY  # stay dominates by duration
        assert merged[0].time_range == TimeRange(0, 600)

    def test_merged_same_region_respects_gap(self):
        sequence = MobilitySemanticsSequence(
            "d",
            [
                triplet(EVENT_STAY, "A", 0, 100),
                triplet(EVENT_STAY, "A", 500, 600),  # left and came back
            ],
        )
        assert len(sequence.merged_same_region()) == 2

    def test_merged_same_region_keeps_inferred_separate(self):
        sequence = MobilitySemanticsSequence(
            "d",
            [
                triplet(EVENT_STAY, "A", 0, 100),
                triplet(EVENT_STAY, "A", 110, 200, inferred=True),
            ],
        )
        assert len(sequence.merged_same_region()) == 2

    def test_empty_merges(self):
        empty = MobilitySemanticsSequence("d", [])
        assert len(empty.merged_consecutive()) == 0
        assert len(empty.merged_same_region()) == 0
