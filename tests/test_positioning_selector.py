"""Unit + property tests for the Data Selector rule algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SelectorError
from repro.geometry import BoundingBox, Point
from repro.positioning import (
    DailyHoursRule,
    DataSelector,
    DeviceIdRule,
    DurationRule,
    FrequencyRule,
    MemorySource,
    PeriodicPatternRule,
    PositioningSequence,
    RawPositioningRecord,
    RecordCountRule,
    SpatialRangeRule,
    TemporalRangeRule,
)
from repro.timeutil import DAY, HOUR, TimeRange

from .conftest import walk_sequence


def rec(t, device="dev", x=0.0, y=0.0, floor=1):
    return RawPositioningRecord(t, device, Point(x, y, floor))


class TestDeviceIdRule:
    def test_glob(self):
        rule = DeviceIdRule("3a.*")
        assert rule.keeps_record(rec(0, "3a.0001.14"))
        assert not rule.keeps_record(rec(0, "4b.0001.14"))

    def test_regex(self):
        rule = DeviceIdRule(r"3a\.\d{4}\.14", regex=True)
        assert rule.keeps_record(rec(0, "3a.0001.14"))
        assert not rule.keeps_record(rec(0, "3a.x.14"))

    def test_bad_regex(self):
        with pytest.raises(SelectorError):
            DeviceIdRule("([", regex=True)

    def test_empty_pattern(self):
        with pytest.raises(SelectorError):
            DeviceIdRule("")


class TestSpatialTemporalRules:
    def test_spatial_bounds(self):
        rule = SpatialRangeRule(bounds=BoundingBox(0, 0, 10, 10))
        assert rule.keeps_record(rec(0, x=5, y=5))
        assert not rule.keeps_record(rec(0, x=15, y=5))

    def test_spatial_floors(self):
        rule = SpatialRangeRule(floors=[1, 2])
        assert rule.keeps_record(rec(0, floor=1))
        assert not rule.keeps_record(rec(0, floor=3))

    def test_spatial_needs_something(self):
        with pytest.raises(SelectorError):
            SpatialRangeRule()

    def test_temporal_range(self):
        rule = TemporalRangeRule(TimeRange(10, 20))
        assert rule.keeps_record(rec(15))
        assert not rule.keeps_record(rec(25))

    def test_daily_hours(self):
        rule = DailyHoursRule(10 * HOUR, 22 * HOUR)
        assert rule.keeps_record(rec(12 * HOUR))
        assert rule.keeps_record(rec(DAY + 12 * HOUR))  # next day too
        assert not rule.keeps_record(rec(3 * HOUR))

    def test_daily_hours_validation(self):
        with pytest.raises(SelectorError):
            DailyHoursRule(22 * HOUR, 10 * HOUR)


class TestSequenceLevelRules:
    def test_duration(self):
        rule = DurationRule(min_seconds=30)
        short = walk_sequence(points=[(0, 0, 1), (1, 0, 1)], interval=5)
        long = walk_sequence(points=[(i, 0, 1) for i in range(10)], interval=5)
        assert not rule.accepts_sequence(short)
        assert rule.accepts_sequence(long)

    def test_duration_validation(self):
        with pytest.raises(SelectorError):
            DurationRule(min_seconds=10, max_seconds=5)

    def test_frequency(self):
        dense = walk_sequence(points=[(i, 0, 1) for i in range(20)], interval=1)
        sparse = walk_sequence(points=[(i, 0, 1) for i in range(5)], interval=60)
        rule = FrequencyRule(min_per_minute=10)
        assert rule.accepts_sequence(dense)
        assert not rule.accepts_sequence(sparse)

    def test_record_count(self):
        rule = RecordCountRule(min_records=5, max_records=15)
        assert rule.accepts_sequence(walk_sequence())
        assert not rule.accepts_sequence(
            walk_sequence(points=[(0, 0, 1), (1, 0, 1)])
        )

    def test_periodic_pattern(self):
        staff_records = [rec(day * DAY + 10 * HOUR, "staff") for day in range(5)]
        visitor_records = [rec(10 * HOUR + i, "visitor") for i in range(5)]
        rule = PeriodicPatternRule(min_periods=3)
        assert rule.accepts_sequence(PositioningSequence("staff", staff_records))
        assert not rule.accepts_sequence(
            PositioningSequence("visitor", visitor_records)
        )

    def test_periodic_validation(self):
        with pytest.raises(SelectorError):
            PeriodicPatternRule(0)


class TestCombinators:
    def test_and(self):
        rule = DeviceIdRule("a*") & SpatialRangeRule(floors=[1])
        assert rule.keeps_record(rec(0, "abc", floor=1))
        assert not rule.keeps_record(rec(0, "abc", floor=2))
        assert not rule.keeps_record(rec(0, "xbc", floor=1))

    def test_or(self):
        rule = DeviceIdRule("a*") | DeviceIdRule("b*")
        assert rule.keeps_record(rec(0, "a1"))
        assert rule.keeps_record(rec(0, "b1"))
        assert not rule.keeps_record(rec(0, "c1"))

    def test_not(self):
        rule = ~DeviceIdRule("a*")
        assert not rule.keeps_record(rec(0, "a1"))
        assert rule.keeps_record(rec(0, "b1"))

    def test_mixed_levels(self):
        rule = SpatialRangeRule(floors=[1]) & DurationRule(min_seconds=30)
        seq = walk_sequence(points=[(i, 0, 1) for i in range(10)], interval=5)
        assert rule.accepts_sequence(seq)
        assert rule.keeps_record(rec(0, floor=1))

    @given(st.booleans(), st.booleans())
    def test_demorgan_on_records(self, use_a, use_b):
        record = rec(0, "abc" if use_a else "xyz", floor=1 if use_b else 2)
        a = DeviceIdRule("a*")
        b = SpatialRangeRule(floors=[1])
        left = (~(a & b)).keeps_record(record)
        right = ((~a) | (~b)).keeps_record(record)
        assert left == right

    @given(st.booleans())
    def test_double_negation(self, flag):
        record = rec(0, "abc" if flag else "xyz")
        rule = DeviceIdRule("a*")
        assert (~~rule).keeps_record(record) == rule.keeps_record(record)


class TestDataSelector:
    def _source(self):
        records = []
        # Device A: just over one hour on floor 1 (dense).
        records += [rec(10 * HOUR + i * 30, "3a.0001.14", x=i % 10)
                    for i in range(125)]
        # Device B: five minutes on floor 2.
        records += [rec(11 * HOUR + i * 30, "4b.0002.99", floor=2)
                    for i in range(10)]
        # Device C: two separate visits (gap of 3 hours).
        records += [rec(9 * HOUR + i * 30, "3a.0003.14") for i in range(10)]
        records += [rec(13 * HOUR + i * 30, "3a.0003.14") for i in range(10)]
        return MemorySource(records)

    def test_no_rule_keeps_everything(self):
        selector = DataSelector([self._source()])
        sequences = selector.select()
        assert {s.device_id for s in sequences} == {
            "3a.0001.14", "4b.0002.99", "3a.0003.14",
        }

    def test_paper_example_rule(self):
        # "sequences that last for more than one hour and appear on the
        # ground floor" (paper §2).  Visit-gap splitting keeps device C's
        # two short visits from pooling into one long sequence.
        rule = DurationRule(min_seconds=HOUR) & SpatialRangeRule(floors=[1])
        sequences = DataSelector(
            [self._source()], rule=rule, visit_gap=HOUR
        ).select()
        assert [s.device_id for s in sequences] == ["3a.0001.14"]

    def test_visit_gap_splitting(self):
        selector = DataSelector(
            [self._source()], rule=DeviceIdRule("3a.0003.*"),
            visit_gap=HOUR,
        )
        sequences = selector.select()
        assert len(sequences) == 2

    def test_record_trimming(self):
        rule = TemporalRangeRule(TimeRange(10 * HOUR, 10 * HOUR + 600))
        sequences = DataSelector([self._source()], rule=rule).select()
        assert len(sequences) == 1
        assert len(sequences[0]) == 21

    def test_empty_result(self):
        rule = DeviceIdRule("zz.*")
        assert DataSelector([self._source()], rule=rule).select() == []

    def test_multiple_sources_merged(self):
        selector = DataSelector([self._source(), self._source()])
        sequences = selector.select()
        by_device = {s.device_id: len(s) for s in sequences}
        assert by_device["4b.0002.99"] == 20

    def test_needs_sources(self):
        with pytest.raises(SelectorError):
            DataSelector([])

    def test_count_records(self):
        assert DataSelector([self._source()]).count_records() == 155
