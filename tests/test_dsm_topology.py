"""Unit tests for the derived topology: doors, walking distance, regions."""

import math

import pytest

from repro.dsm import (
    DigitalSpaceModel,
    EntityKind,
    IndoorEntity,
    Topology,
)
from repro.errors import DSMError
from repro.geometry import Point, Polygon


class TestDoorAttachment:
    def test_interior_door_connects_two(self, two_shop_shared):
        topology = two_shop_shared.topology
        assert set(topology.partitions_of_door("door-adidas")) == {
            "hall", "shop-adidas",
        }

    def test_entrance_connects_one(self, two_shop_shared):
        topology = two_shop_shared.topology
        assert topology.partitions_of_door("door-main") == ("hall",)

    def test_unknown_door_raises(self, two_shop_shared):
        with pytest.raises(DSMError):
            two_shop_shared.topology.partitions_of_door("ghost")

    def test_doors_of_partition(self, two_shop_shared):
        doors = two_shop_shared.topology.doors_of_partition("hall")
        assert doors == ["door-adidas", "door-cashier", "door-main", "door-nike"]

    def test_partition_graph_connected(self, two_shop_shared):
        topology = two_shop_shared.topology
        assert topology.partitions_connected("shop-adidas", "shop-cashier")
        assert topology.partitions_connected("hall", "hall")


class TestWalkingDistance:
    def test_same_partition_is_euclidean(self, two_shop_shared):
        topology = two_shop_shared.topology
        d = topology.walking_distance(Point(1, 5), Point(29, 5))
        assert d == pytest.approx(28.0)

    def test_shop_to_shop_detours_through_doors(self, two_shop_shared):
        topology = two_shop_shared.topology
        direct = Point(5, 15).planar_distance_to(Point(15, 15))
        walked = topology.walking_distance(Point(5, 15), Point(15, 15))
        assert walked > direct  # must leave through the doors

    def test_symmetry(self, two_shop_shared):
        topology = two_shop_shared.topology
        a, b = Point(5, 15), Point(25, 15)
        assert topology.walking_distance(a, b) == pytest.approx(
            topology.walking_distance(b, a)
        )

    def test_walking_path_endpoints(self, two_shop_shared):
        topology = two_shop_shared.topology
        path = topology.walking_path(Point(5, 15), Point(25, 15))
        assert path[0] == Point(5, 15)
        assert path[-1] == Point(25, 15)
        assert len(path) >= 4  # via two door anchors

    def test_unreachable_point_is_inf(self, two_shop_shared):
        topology = two_shop_shared.topology
        assert topology.walking_distance(
            Point(5, 15), Point(500, 500)
        ) == math.inf
        assert topology.walking_path(Point(5, 15), Point(500, 500)) == []

    def test_reachable(self, two_shop_shared):
        topology = two_shop_shared.topology
        assert topology.reachable(Point(5, 15), Point(25, 15))
        assert not topology.reachable(Point(5, 15), Point(500, 500))

    def test_straight_move_allowed_within_hall(self, two_shop_shared):
        topology = two_shop_shared.topology
        assert topology.straight_move_allowed(Point(1, 5), Point(29, 5))
        assert not topology.straight_move_allowed(Point(5, 15), Point(15, 15))
        assert not topology.straight_move_allowed(
            Point(1, 5), Point(1, 5).with_floor(2)
        )


class TestCrossFloor:
    @pytest.fixture
    def tower(self):
        """Two stacked halls joined by one staircase."""
        model = DigitalSpaceModel(name="tower")
        for floor in (1, 2):
            model.add_entity(
                IndoorEntity(
                    f"hall-{floor}", EntityKind.HALLWAY,
                    Polygon.rectangle(0, 0, 20, 10, floor=floor),
                )
            )
            model.add_entity(
                IndoorEntity(
                    f"stair-{floor}", EntityKind.STAIRCASE,
                    Polygon.rectangle(9, 4, 11, 6, floor=floor),
                    properties={"stack": "A"},
                )
            )
        return model

    def test_cross_floor_distance_includes_stack_cost(self, tower):
        topology = tower.topology
        d = topology.walking_distance(Point(1, 5, 1), Point(1, 5, 2))
        # in: 1 -> stair (9m), stack cost 20, out: stair -> 1 (9m)
        assert d == pytest.approx(9 + 20 + 9, abs=1.5)

    def test_cross_floor_path_switches_floor(self, tower):
        path = tower.topology.walking_path(Point(1, 5, 1), Point(19, 5, 2))
        floors = [p.floor for p in path]
        assert floors[0] == 1 and floors[-1] == 2

    def test_partition_graph_links_floors(self, tower):
        assert tower.topology.partitions_connected("hall-1", "hall-2")

    def test_custom_floor_cost(self, tower):
        topology = Topology.build(tower, floor_change_cost=100.0)
        d = topology.walking_distance(Point(10, 5, 1), Point(10, 5, 2))
        assert d >= 100.0


class TestRegionGraph:
    def test_shop_adjacent_to_hall(self, two_shop_shared):
        topology = two_shop_shared.topology
        assert topology.regions_adjacent("r-adidas", "r-hall")
        assert topology.regions_adjacent("r-nike", "r-hall")

    def test_shops_not_directly_adjacent(self, two_shop_shared):
        assert not two_shop_shared.topology.regions_adjacent(
            "r-adidas", "r-nike"
        )

    def test_region_neighbors(self, two_shop_shared):
        neighbors = two_shop_shared.topology.region_neighbors("r-hall")
        assert neighbors == ["r-adidas", "r-cashier", "r-nike"]

    def test_region_neighbors_unknown_raises(self, two_shop_shared):
        with pytest.raises(DSMError):
            two_shop_shared.topology.region_neighbors("ghost")

    def test_region_hops(self, two_shop_shared):
        topology = two_shop_shared.topology
        assert topology.region_hops("r-adidas", "r-adidas") == 0
        assert topology.region_hops("r-adidas", "r-hall") == 1
        assert topology.region_hops("r-adidas", "r-nike") == 2

    def test_region_path(self, two_shop_shared):
        path = two_shop_shared.topology.region_path("r-adidas", "r-cashier")
        assert path[0] == "r-adidas" and path[-1] == "r-cashier"
        assert "r-hall" in path

    def test_region_distance_positive(self, two_shop_shared):
        d = two_shop_shared.topology.region_distance("r-adidas", "r-nike")
        assert 10 < d < 40

    def test_region_distance_self_zero(self, two_shop_shared):
        assert two_shop_shared.topology.region_distance("r-hall", "r-hall") == 0.0

    def test_mall_region_graph_connected(self, mall):
        import networkx as nx

        graph = mall.topology.region_graph
        assert nx.is_connected(graph)

    def test_mall_cross_floor_region_edges_exist(self, mall):
        # Corridors of adjacent floors must be adjacent via the stacks.
        corridors = [
            r.region_id for r in mall.regions() if r.name.startswith("Corridor")
        ]
        assert mall.topology.regions_adjacent(corridors[0], corridors[1])


class TestTopologyCaching:
    def test_topology_invalidated_on_mutation(self, two_shop):
        first = two_shop.topology
        two_shop.add_entity(
            IndoorEntity("door-extra", EntityKind.DOOR, Point(10, 15))
        )
        second = two_shop.topology
        assert first is not second
        assert "door-extra" in second.door_connections

    def test_topology_cached_between_reads(self, two_shop):
        assert two_shop.topology is two_shop.topology
