"""Unit tests for the mobility simulator and the Wi-Fi error model."""

import pytest

from repro.core.cleaning import SpeedValidator
from repro.errors import SimulationError
from repro.simulation import (
    BROWSER,
    PERFECT_CHANNEL,
    SHOPPER,
    STAFF,
    AgentProfile,
    MobilitySimulator,
    SimulationConfig,
    WifiErrorModel,
)
from repro.timeutil import TimeRange


class TestProfiles:
    def test_presets_valid(self):
        for profile in (SHOPPER, BROWSER, STAFF):
            assert profile.visits[0] >= 1
            assert profile.walk_speed[0] > 0

    def test_validation(self):
        with pytest.raises(SimulationError):
            AgentProfile("x", visits=(0, 3))
        with pytest.raises(SimulationError):
            AgentProfile("x", stay_duration=(10.0, 5.0))
        with pytest.raises(SimulationError):
            AgentProfile("x", category_weights={})
        with pytest.raises(SimulationError):
            AgentProfile("x", floor_change_bias=2.0)


class TestWifiErrorModel:
    def test_validation(self):
        with pytest.raises(SimulationError):
            WifiErrorModel(sigma=-1)
        with pytest.raises(SimulationError):
            WifiErrorModel(dropout_rate=1.5)
        with pytest.raises(SimulationError):
            WifiErrorModel(interval_mean=0)

    def test_perfect_channel_identity_positions(self, simulated):
        observed = PERFECT_CHANNEL.observe(
            simulated.ground_truth, [1, 2, 3], seed=0
        )
        # Samples align with some ground-truth record exactly.
        truth_points = {
            (round(p.x, 6), round(p.y, 6), p.floor)
            for p in simulated.ground_truth.points
        }
        hits = sum(
            1
            for p in observed.points
            if (round(p.x, 6), round(p.y, 6), p.floor) in truth_points
        )
        assert hits == len(observed)

    def test_noise_channel_perturbs(self, simulated):
        channel = WifiErrorModel(sigma=2.0, dropout_rate=0.0,
                                 floor_error_rate=0.0, outlier_rate=0.0)
        observed = channel.observe(simulated.ground_truth, [1, 2, 3], seed=1)
        assert len(observed) >= 2
        assert observed.device_id == simulated.device_id

    def test_dropout_thins_sequence(self, simulated):
        dense = WifiErrorModel(dropout_rate=0.0, interval_mean=5.0)
        sparse = WifiErrorModel(dropout_rate=0.5, interval_mean=5.0)
        n_dense = len(dense.observe(simulated.ground_truth, [1], seed=2))
        n_sparse = len(sparse.observe(simulated.ground_truth, [1], seed=2))
        assert n_sparse < n_dense

    def test_floor_errors_appear(self, simulated):
        channel = WifiErrorModel(floor_error_rate=0.5, sigma=0.0,
                                 outlier_rate=0.0, dropout_rate=0.0)
        observed = channel.observe(simulated.ground_truth, [1, 2, 3], seed=3)
        truth_floors = {r.timestamp: r.floor for r in simulated.ground_truth}
        assert len(observed.floors_visited) >= 2

    def test_deterministic_by_seed(self, simulated):
        channel = WifiErrorModel()
        a = channel.observe(simulated.ground_truth, [1, 2, 3], seed=9)
        b = channel.observe(simulated.ground_truth, [1, 2, 3], seed=9)
        assert a.points == b.points


class TestSimulator:
    def test_needs_entrance(self, two_shop):
        two_shop.remove_entity("door-main")
        with pytest.raises(SimulationError):
            MobilitySimulator(two_shop)

    def test_ground_truth_physically_consistent(self, mall3, simulated):
        """Ground truth never violates the indoor speed constraint."""
        validator = SpeedValidator(mall3.topology, max_speed=2.5)
        violations = validator.find_violations(
            list(simulated.ground_truth.records)
        )
        assert violations == []

    def test_ground_truth_inside_walkable_space(self, mall3, simulated):
        outside = sum(
            1
            for p in simulated.ground_truth.points
            if mall3.partition_at(p) is None
        )
        assert outside / len(simulated.ground_truth) < 0.02

    def test_visits_match_itinerary(self, mall3, simulated):
        visited_names = {
            mall3.region(r).name for r in simulated.visited_region_ids
        }
        truth_regions = {
            s.region_name for s in simulated.truth_semantics
            if s.event == "stay"
        }
        # Every scheduled visit long enough to be a stay shows up.
        assert visited_names & truth_regions

    def test_truth_semantics_cover_stays(self, simulated):
        stays = [s for s in simulated.truth_semantics if s.event == "stay"]
        assert stays
        assert all(s.duration >= 60.0 for s in stays)

    def test_device_deterministic_by_seed(self, mall3):
        simulator = MobilitySimulator(mall3, seed=5)
        a = simulator.simulate_device("d", SHOPPER, seed=1)
        b = simulator.simulate_device("d", SHOPPER, seed=1)
        assert a.ground_truth.points == b.ground_truth.points
        assert a.visited_region_ids == b.visited_region_ids

    def test_population_ids_and_window(self, mall3):
        simulator = MobilitySimulator(mall3, seed=6)
        window = TimeRange(1000.0, 20000.0)
        devices = simulator.simulate_population(3, window=window, seed=6)
        assert [d.device_id for d in devices] == [
            "3a.0000.14", "3a.0001.14", "3a.0002.14",
        ]
        for device in devices:
            assert device.ground_truth.time_range.start >= window.start

    def test_population_validation(self, mall3):
        simulator = MobilitySimulator(mall3, seed=0)
        with pytest.raises(SimulationError):
            simulator.simulate_population(0)

    def test_config_validation(self):
        with pytest.raises(SimulationError):
            SimulationConfig(sample_interval=0)
        with pytest.raises(SimulationError):
            SimulationConfig(stay_threshold=0)

    def test_staff_profile_long_dwells(self, mall3):
        simulator = MobilitySimulator(mall3, seed=8)
        staff = simulator.simulate_device("staff", STAFF, seed=4)
        longest = max(s.duration for s in staff.truth_semantics)
        assert longest >= 3600.0
