"""GridIndex: the uniform grid behind every point-location query.

Every cleaned positioning record is located through this structure at
least once, so its edge behavior (closed-box boundaries, cell-boundary
points, multi-cell spans, duplicate keys) must be exact — a candidate
missed here is a record silently annotated to the wrong region.
"""

from __future__ import annotations

import pytest

from repro.dsm.index import GridIndex
from repro.geometry import BoundingBox, Point


def make_index(cell_size: float = 8.0) -> GridIndex:
    return GridIndex(cell_size=cell_size)


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def test_cell_size_must_be_positive():
    with pytest.raises(ValueError):
        GridIndex(cell_size=0.0)
    with pytest.raises(ValueError):
        GridIndex(cell_size=-3.0)


def test_empty_index():
    index = make_index()
    assert len(index) == 0
    assert index.candidates_at(Point(1.0, 1.0)) == []
    assert index.candidates_in(BoundingBox(0, 0, 100, 100)) == []


def test_duplicate_key_rejected():
    index = make_index()
    index.insert("a", BoundingBox(0, 0, 4, 4))
    with pytest.raises(ValueError):
        index.insert("a", BoundingBox(10, 10, 14, 14))
    # The failed insert must not have clobbered the original bounds.
    assert index.candidates_at(Point(2.0, 2.0)) == ["a"]
    assert index.candidates_at(Point(12.0, 12.0)) == []


# ----------------------------------------------------------------------
# Point location, including exact cell/box boundaries
# ----------------------------------------------------------------------
def test_candidates_at_inside_and_outside():
    index = make_index()
    index.insert("box", BoundingBox(2, 2, 6, 6))
    assert index.candidates_at(Point(4.0, 4.0)) == ["box"]
    assert index.candidates_at(Point(7.0, 4.0)) == []
    assert index.candidates_at(Point(100.0, 100.0)) == []


def test_point_exactly_on_box_boundary_is_contained():
    """Boxes are closed, so edge and corner points are hits."""
    index = make_index()
    index.insert("box", BoundingBox(2, 2, 6, 6))
    for x, y in [(2, 2), (6, 6), (2, 6), (6, 2), (4, 2), (2, 4), (6, 4)]:
        assert index.candidates_at(Point(float(x), float(y))) == ["box"]


def test_point_exactly_on_cell_boundary():
    """A box touching a grid line is registered in both adjacent cells.

    With cell_size=8 the point (8, 8) falls in cell (1, 1); a box spanning
    [0, 8]² also touches that cell, so the boundary point still finds it.
    """
    index = make_index(cell_size=8.0)
    index.insert("box", BoundingBox(0, 0, 8, 8))
    assert index.candidates_at(Point(8.0, 8.0)) == ["box"]
    assert index.candidates_at(Point(0.0, 8.0)) == ["box"]
    assert index.candidates_at(Point(8.0, 0.0)) == ["box"]
    # Just past the closed edge: same grid cell, but the exact test fails.
    assert index.candidates_at(Point(8.0001, 8.0)) == []


def test_box_ending_exactly_at_cell_line_does_not_leak():
    """A box [0, 8)² closed at 8 registers in cell (1, 1) but only the
    boundary line is contained there — interior points of the next cell
    must not report it."""
    index = make_index(cell_size=8.0)
    index.insert("box", BoundingBox(0, 0, 8, 8))
    assert index.candidates_at(Point(9.0, 9.0)) == []


def test_negative_coordinates():
    index = make_index(cell_size=8.0)
    index.insert("neg", BoundingBox(-12, -12, -4, -4))
    assert index.candidates_at(Point(-8.0, -8.0)) == ["neg"]
    assert index.candidates_at(Point(-3.0, -3.0)) == []
    assert index.candidates_in(BoundingBox(-100, -100, 0, 0)) == ["neg"]


def test_overlapping_entries_all_reported():
    index = make_index()
    index.insert("a", BoundingBox(0, 0, 10, 10))
    index.insert("b", BoundingBox(5, 5, 15, 15))
    assert sorted(index.candidates_at(Point(7.0, 7.0))) == ["a", "b"]
    assert index.candidates_at(Point(1.0, 1.0)) == ["a"]
    assert index.candidates_at(Point(14.0, 14.0)) == ["b"]


# ----------------------------------------------------------------------
# Range queries spanning many cells
# ----------------------------------------------------------------------
def test_candidates_in_spanning_many_cells():
    index = make_index(cell_size=8.0)
    for i in range(10):
        index.insert(f"k{i}", BoundingBox(i * 10, 0, i * 10 + 4, 4))
    assert len(index) == 10
    hits = index.candidates_in(BoundingBox(0, 0, 100, 10))
    assert sorted(hits) == sorted(f"k{i}" for i in range(10))
    # Partial span picks up only the intersecting boxes.
    some = index.candidates_in(BoundingBox(18, 0, 42, 10))
    assert sorted(some) == ["k2", "k3", "k4"]


def test_candidates_in_deduplicates_multicell_entries():
    """An entry spanning many cells appears exactly once per query."""
    index = make_index(cell_size=8.0)
    index.insert("wide", BoundingBox(0, 0, 50, 50))
    hits = index.candidates_in(BoundingBox(0, 0, 50, 50))
    assert hits == ["wide"]


def test_candidates_in_touching_edges_count_as_intersecting():
    index = make_index()
    index.insert("box", BoundingBox(0, 0, 4, 4))
    assert index.candidates_in(BoundingBox(4, 4, 8, 8)) == ["box"]
    assert index.candidates_in(BoundingBox(4.0001, 4.0001, 8, 8)) == []


def test_tiny_cell_size_large_box():
    """A box covering thousands of tiny cells still answers correctly."""
    index = make_index(cell_size=0.5)
    index.insert("big", BoundingBox(0, 0, 20, 20))
    index.insert("small", BoundingBox(30, 30, 30.2, 30.2))
    assert index.candidates_at(Point(10.25, 19.75)) == ["big"]
    assert index.candidates_in(BoundingBox(29, 29, 31, 31)) == ["small"]


# ----------------------------------------------------------------------
# The pinned cell-boundary tie-break, shared by both annotator layouts
# ----------------------------------------------------------------------
def test_cell_boundary_tie_break_is_higher_indexed_cell():
    """The documented rule of ``GridIndex._cell_of``: a coordinate exactly
    on a cell line belongs to the higher-indexed cell (floor division),
    and insertion covers a bounds through its max-edge cell, so boundary
    points always see every box touching the shared line."""
    index = make_index(cell_size=8.0)
    assert index._cell_of(8.0, 8.0) == (1, 1)
    assert index._cell_of(7.9999999, 8.0) == (0, 1)
    assert index._cell_of(-8.0, 0.0) == (-1, 0)
    # Two boxes meeting exactly at the x=8 cell line: the boundary point
    # must report both (left box reaches the line, right box starts on it).
    index.insert("left", BoundingBox(0, 0, 8, 8))
    index.insert("right", BoundingBox(8, 0, 16, 8))
    assert index.candidates_at(Point(8.0, 4.0)) == ["left", "right"]


def test_cell_boundary_lookups_agree_across_annotator_layouts():
    """Regression: records exactly on grid-cell edges (multiples of the
    8.0 cell size, which in the two-shop venue are also interior points,
    wall lines and shop corners) must locate to the *same* partition and
    primary region through the object model and the columnar locator —
    one missed boundary candidate would silently annotate those records
    to a different region in one layout only."""
    from repro.columnar import RecordBatch
    from repro.columnar.locate import (
        PointLocator,
        reference_partition_at,
        reference_region_at,
    )
    from repro.positioning import RawPositioningRecord

    from .conftest import make_two_shop_dsm

    model = make_two_shop_dsm()
    locator = PointLocator(model)  # prepares (and refreshes) the indexes
    cell = model._partition_index[1].cell_size
    edge_points = [
        Point(x * cell, y * cell, 1)
        for x in range(-1, 5)
        for y in range(-1, 4)
    ]

    # Scalar lookups (the grid path) and a numpy-primed session (the bbox
    # mask path) must both match the object model, object identity included.
    batch = RecordBatch.from_records(
        [
            RawPositioningRecord(float(i), "edge", point)
            for i, point in enumerate(edge_points)
        ]
    )
    primed = locator.session()
    primed.prime(batch)
    cold = locator.session()
    located_something = False
    for point in edge_points:
        expected_partition = reference_partition_at(model, point)
        expected_region = reference_region_at(model, point)
        for session in (cold, primed):
            args = (point.x, point.y, point.floor)
            assert session.partition_entity(*args) is expected_partition
            assert session.primary_region(*args) is expected_region
        located_something = located_something or (
            expected_partition is not None
        )
    assert located_something  # the probe grid must cross real geometry
