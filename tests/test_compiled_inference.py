"""The compiled inference path's headline invariant: bit-for-bit equivalence.

Phase-two MAP inference can run over the object model (networkx adjacency
plus per-call smoothed queries) or over the integer-indexed tables of a
:class:`CompiledTransitionModel` (``InferenceConfig.compiled``, the
default).  The contract is that the two are *indistinguishable by
output* — every candidate path, every log-probability, every inferred
triplet identical, float bits included — and that no mutation of the
knowledge can ever leave a stale compiled answer live.  This suite
proves it differentially:

- unit tests pin the compiled tables against the object queries they
  replicate (probabilities, logs, adjacency order, defaults);
- generation-counter tests pin the cache lifecycle (every mutation
  invalidates, pickling drops the cache but keeps the counter);
- hypothesis differentials drive random walk corpora through both
  ``best_path``/``infer_between`` implementations;
- a hypothesis staleness property interleaves fold/unfold/scale/roll/
  retire (window and decay retentions) with inference and checks each
  answer against a fresh compile;
- an engine matrix replays dropout-injected feeds over buildings x
  backends x retentions, and the live service's ``finalize()`` is
  compared across the two paths.
"""

from __future__ import annotations

import math
import pickle
import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Translator
from repro.core.complementing import (
    CompiledTransitionModel,
    ComplementorConfig,
    InferenceConfig,
    MobilityKnowledge,
    PartialKnowledge,
    SemanticsInference,
    ensure_compiled,
)
from repro.core.semantics import (
    EVENT_STAY,
    MobilitySemantic,
    MobilitySemanticsSequence,
)
from repro.core.translator import TranslatorConfig
from repro.engine import BACKENDS, Engine, EngineConfig
from repro.errors import InferenceError
from repro.knowledge import KnowledgeStore
from repro.live import LiveConfig, LiveTranslationService
from repro.geometry import Point
from repro.positioning import (
    PositioningSequence,
    RawPositioningRecord,
    RecordStream,
    inject_dropout,
    sequence_stream,
)
from repro.telemetry import MetricsRegistry, use_registry
from repro.timeutil import TimeRange

from .conftest import make_two_shop_dsm, stationary_sequence
from .test_complementing import REGIONS, corpus, triplet

ALL_BACKENDS = sorted(BACKENDS)

#: Retention specs covering every policy family the store parses.
RETENTIONS = ("unbounded", "window:2", "window:90s", "decay:4")

#: The object reference path, for the differential legs.
OBJECT_INFERENCE = InferenceConfig(compiled=False)
OBJECT_TRANSLATOR = TranslatorConfig(
    complementing=ComplementorConfig(inference=OBJECT_INFERENCE)
)


def bits(value: float) -> bytes:
    """The IEEE-754 bytes of a float — equality up to the sign of zero."""
    return struct.pack("<d", value)


def fresh_knowledge() -> MobilityKnowledge:
    """A deterministic rebuild — never shares an attached compiled model."""
    return MobilityKnowledge.from_sequences(corpus(), REGIONS)


def assert_paths_identical(reference, candidate):
    """InferredPath equality down to the float bits of every term."""
    if reference is None or candidate is None:
        assert reference is None and candidate is None
        return
    assert candidate.regions == reference.regions
    assert bits(candidate.log_probability) == bits(reference.log_probability)
    assert bits(candidate.duration_penalty) == bits(
        reference.duration_penalty
    )
    assert bits(candidate.score) == bits(reference.score)


# ----------------------------------------------------------------------
# Compiled tables vs the object queries they replicate
# ----------------------------------------------------------------------
class TestCompiledModel:
    def test_tables_match_object_queries(self, two_shop_shared):
        knowledge = fresh_knowledge()
        compiled = CompiledTransitionModel.compile(
            knowledge, two_shop_shared.topology
        )
        assert knowledge.compiled_model() is None  # object path stays live
        for origin in REGIONS:
            for destination in REGIONS:
                expected = knowledge.transition_probability(
                    origin, destination
                )
                assert bits(compiled.probability(origin, destination)) == (
                    bits(expected)
                )
                if origin != destination:
                    assert bits(
                        compiled.log_probability(origin, destination)
                    ) == bits(math.log(expected))

    def test_diagonal_probability_is_zero(self, two_shop_shared):
        compiled = CompiledTransitionModel.compile(
            fresh_knowledge(), two_shop_shared.topology
        )
        for region in REGIONS:
            assert compiled.probability(region, region) == 0.0
            assert compiled.log_probability(region, region) == -math.inf

    def test_adjacency_preserves_graph_iteration_order(self, two_shop_shared):
        knowledge = fresh_knowledge()
        topology = two_shop_shared.topology
        compiled = CompiledTransitionModel.compile(knowledge, topology)
        graph = topology.region_graph
        for region in REGIONS:
            position = compiled.index[region]
            if region not in graph:
                assert compiled.in_graph[position] is False
                assert compiled.neighbors[position] == ()
                continue
            lifted = [
                compiled.regions[i] for i in compiled.neighbors[position]
            ]
            assert lifted == list(graph.neighbors(region))
            assert compiled.neighbor_sets[position] == {
                compiled.index[n] for n in graph.neighbors(region)
            }

    def test_graph_node_outside_vocabulary_rejected(self, two_shop_shared):
        narrow = MobilityKnowledge(regions=["r-adidas", "r-hall"])
        with pytest.raises(InferenceError, match="not in the knowledge"):
            CompiledTransitionModel.compile(narrow, two_shop_shared.topology)

    def test_mean_dwell_and_leg_distance_defaults(self, two_shop_shared):
        knowledge = fresh_knowledge()
        topology = two_shop_shared.topology
        compiled = CompiledTransitionModel.compile(knowledge, topology)
        for region in REGIONS:
            position = compiled.index[region]
            assert bits(compiled.mean_dwell(position, 60.0)) == bits(
                knowledge.mean_dwell(region, 60.0)
            )
        # An unconnected pair falls back to the conservative estimate.
        adidas = compiled.index["r-adidas"]
        nike = compiled.index["r-nike"]
        assert compiled.leg_distance(adidas, nike) == 25.0
        # A graph edge serves its weight verbatim.
        graph = topology.region_graph
        hall = compiled.index["r-hall"]
        weight = graph.edges["r-adidas", "r-hall"].get("weight")
        if weight is not None:
            assert bits(compiled.leg_distance(adidas, hall)) == bits(weight)


# ----------------------------------------------------------------------
# Generation counter and cache lifecycle
# ----------------------------------------------------------------------
class TestGenerationCounter:
    def test_every_mutation_bumps(self):
        knowledge = MobilityKnowledge(regions=REGIONS)
        generation = knowledge.generation
        knowledge.observe(corpus()[0])
        assert knowledge.generation == generation + 1
        shard = PartialKnowledge.from_sequences(corpus()[:2], REGIONS)
        knowledge.fold(shard)
        assert knowledge.generation == generation + 2
        knowledge.unfold(shard)
        assert knowledge.generation == generation + 3
        knowledge.scale(0.5)
        assert knowledge.generation == generation + 4

    def test_failed_mutations_do_not_invalidate(self, two_shop_shared):
        knowledge = fresh_knowledge()
        compiled = ensure_compiled(knowledge, two_shop_shared.topology)
        foreign = PartialKnowledge.from_sequences(
            corpus()[:1], ["r-elsewhere", *REGIONS]
        )
        with pytest.raises(InferenceError):
            knowledge.fold(foreign)
        with pytest.raises(InferenceError):
            knowledge.scale(-1.0)
        assert knowledge.compiled_model() is compiled

    def test_mutation_invalidates_attached_model(self, two_shop_shared):
        knowledge = fresh_knowledge()
        topology = two_shop_shared.topology
        first = ensure_compiled(knowledge, topology)
        assert knowledge.compiled_model() is first
        assert ensure_compiled(knowledge, topology) is first  # cache hit
        knowledge.observe(corpus()[0])
        assert knowledge.compiled_model() is None
        second = ensure_compiled(knowledge, topology)
        assert second is not first
        assert second.generation == knowledge.generation

    def test_different_topology_object_recompiles(self, two_shop_shared):
        knowledge = fresh_knowledge()
        first = ensure_compiled(knowledge, two_shop_shared.topology)
        other = make_two_shop_dsm().topology
        second = ensure_compiled(knowledge, other)
        assert second is not first
        assert second.topology is other

    def test_pickle_drops_cache_keeps_generation(self, two_shop_shared):
        knowledge = fresh_knowledge()
        ensure_compiled(knowledge, two_shop_shared.topology)
        restored = pickle.loads(pickle.dumps(knowledge))
        assert restored == knowledge
        assert restored.generation == knowledge.generation
        assert restored.compiled_model() is None
        assert knowledge.compiled_model() is not None  # original untouched

    def test_compile_telemetry_counters(self, two_shop_shared):
        knowledge = fresh_knowledge()
        topology = two_shop_shared.topology
        registry = MetricsRegistry()
        with use_registry(registry):
            ensure_compiled(knowledge, topology)
            ensure_compiled(knowledge, topology)
            knowledge.observe(corpus()[0])
            ensure_compiled(knowledge, topology)
        assert registry.counter("trips_inference_compiles_total").value == 2
        assert (
            registry.counter("trips_inference_compile_hits_total").value == 1
        )


# ----------------------------------------------------------------------
# Satellite 1: knowledge queries route through the table unchanged
# ----------------------------------------------------------------------
class TestKnowledgeQueryRouting:
    def test_queries_identical_with_and_without_table(self, two_shop_shared):
        plain = fresh_knowledge()
        tabled = fresh_knowledge()
        ensure_compiled(tabled, two_shop_shared.topology)
        assert tabled.compiled_model() is not None
        for origin in REGIONS:
            for destination in REGIONS:
                assert bits(
                    tabled.transition_probability(origin, destination)
                ) == bits(plain.transition_probability(origin, destination))
                if origin != destination:
                    assert bits(
                        tabled.log_transition(origin, destination)
                    ) == bits(plain.log_transition(origin, destination))

    def test_most_likely_next_identical(self, two_shop_shared):
        plain = fresh_knowledge()
        tabled = fresh_knowledge()
        ensure_compiled(tabled, two_shop_shared.topology)
        for origin in REGIONS:
            for top_k in (1, 3, len(REGIONS)):
                expected = plain.most_likely_next(origin, top_k)
                got = tabled.most_likely_next(origin, top_k)
                assert [r for r, _ in got] == [r for r, _ in expected]
                assert [bits(p) for _, p in got] == [
                    bits(p) for _, p in expected
                ]

    def test_most_likely_next_matches_per_destination_queries(self):
        knowledge = fresh_knowledge()
        ranked = knowledge.most_likely_next("r-adidas", len(REGIONS))
        for destination, probability in ranked:
            assert bits(probability) == bits(
                knowledge.transition_probability("r-adidas", destination)
            )

    def test_unknown_origin_still_rejected(self, two_shop_shared):
        tabled = fresh_knowledge()
        ensure_compiled(tabled, two_shop_shared.topology)
        with pytest.raises(InferenceError):
            tabled.transition_probability("r-mystery", "r-hall")
        with pytest.raises(InferenceError):
            tabled.log_transition("r-hall", "r-mystery")
        with pytest.raises(InferenceError):
            tabled.most_likely_next("r-mystery")


# ----------------------------------------------------------------------
# Satellite 2: the unknown-region contract
# ----------------------------------------------------------------------
class TestUnknownRegionContract:
    @pytest.fixture(params=["compiled", "objects"])
    def inference(self, request, two_shop_shared):
        config = (
            InferenceConfig()
            if request.param == "compiled"
            else OBJECT_INFERENCE
        )
        return SemanticsInference(
            fresh_knowledge(), two_shop_shared.topology, config
        )

    def test_dwell_deficit_of_unknown_region_is_silent_zero(self, inference):
        """Flank extension skips regions the knowledge cannot speak about."""
        stranger = triplet(EVENT_STAY, "r-mystery", 0.0, 30.0)
        assert inference._dwell_deficit(stranger) == 0.0

    def test_best_path_unknown_endpoint_raises(self, inference):
        """Path endpoints outside the vocabulary fail loudly."""
        with pytest.raises(InferenceError, match="unknown origin"):
            inference.best_path("r-mystery", "r-hall", 100.0)
        with pytest.raises(InferenceError, match="unknown destination"):
            inference.best_path("r-hall", "r-mystery", 100.0)


# ----------------------------------------------------------------------
# Hypothesis differential: compiled vs object inference
# ----------------------------------------------------------------------
region = st.sampled_from(REGIONS)

gap_duration = st.one_of(
    st.sampled_from([0.0, -5.0, 45.0, 121.0, 600.0]),
    st.floats(min_value=1.0, max_value=4000.0, allow_nan=False),
)

dwell_seconds = st.floats(min_value=10.0, max_value=900.0, allow_nan=False)


@st.composite
def walk_corpora(draw) -> list[MobilitySemanticsSequence]:
    """Random annotated walks over the two-shop regions."""
    count = draw(st.integers(min_value=1, max_value=5))
    sequences = []
    for index in range(count):
        length = draw(st.integers(min_value=1, max_value=6))
        t = index * 10000.0
        triplets = []
        for step in range(length):
            visited = draw(region)
            dwell = draw(dwell_seconds)
            triplets.append(triplet(EVENT_STAY, visited, t, t + dwell))
            t += dwell + draw(st.floats(min_value=5.0, max_value=200.0))
        sequences.append(MobilitySemanticsSequence(f"w{index}", triplets))
    return sequences


def paired_inferences(sequences, topology, **config):
    """Object and compiled inference over *independent* equal knowledge.

    Fresh knowledge per leg: the satellite-1 routing serves knowledge
    queries from an attached table, so sharing one object would let the
    reference leg silently read the tables it is supposed to check.
    """
    reference = SemanticsInference(
        MobilityKnowledge.from_sequences(sequences, REGIONS),
        topology,
        InferenceConfig(compiled=False, **config),
    )
    compiled = SemanticsInference(
        MobilityKnowledge.from_sequences(sequences, REGIONS),
        topology,
        InferenceConfig(**config),
    )
    return reference, compiled


class TestInferenceDifferential:
    @given(
        sequences=walk_corpora(),
        origin=region,
        destination=region,
        duration=gap_duration,
        max_hops=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=120, deadline=None)
    def test_best_path_bit_for_bit(
        self, two_shop_shared, sequences, origin, destination, duration, max_hops
    ):
        reference, compiled = paired_inferences(
            sequences, two_shop_shared.topology, max_hops=max_hops
        )
        assert_paths_identical(
            reference.best_path(origin, destination, duration),
            compiled.best_path(origin, destination, duration),
        )

    @given(
        sequences=walk_corpora(),
        before_region=region,
        after_region=region,
        before_dwell=dwell_seconds,
        after_dwell=dwell_seconds,
        duration=st.floats(min_value=121.0, max_value=4000.0, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_infer_between_bit_for_bit(
        self,
        two_shop_shared,
        sequences,
        before_region,
        after_region,
        before_dwell,
        after_dwell,
        duration,
    ):
        before = triplet(EVENT_STAY, before_region, 0.0, before_dwell)
        gap = TimeRange(before_dwell, before_dwell + duration)
        after = triplet(
            EVENT_STAY, after_region, gap.end, gap.end + after_dwell
        )
        reference, compiled = paired_inferences(
            sequences, two_shop_shared.topology
        )
        assert compiled.infer_between(
            before, after, gap
        ) == reference.infer_between(before, after, gap)


# ----------------------------------------------------------------------
# The best_path memo: bounded, exact, generation-keyed
# ----------------------------------------------------------------------
class TestPathMemo:
    def make_inference(self, two_shop_shared, **config):
        return SemanticsInference(
            fresh_knowledge(),
            two_shop_shared.topology,
            InferenceConfig(**config),
        )

    def test_memo_hits_return_the_cached_answer(self, two_shop_shared):
        inference = self.make_inference(two_shop_shared)
        first = inference.best_path("r-adidas", "r-nike", 300.0)
        assert (inference.memo_hits, inference.memo_misses) == (0, 1)
        second = inference.best_path("r-adidas", "r-nike", 300.0)
        assert second is first  # the memoized object itself
        assert (inference.memo_hits, inference.memo_misses) == (1, 1)

    def test_memo_is_bounded_lru(self, two_shop_shared):
        inference = self.make_inference(two_shop_shared, path_memo=3)
        durations = [100.0, 200.0, 300.0, 400.0, 500.0]
        for duration in durations:
            inference.best_path("r-adidas", "r-nike", duration)
        assert len(inference._path_memo) == 3
        # The oldest entries were evicted; re-asking misses again.
        misses = inference.memo_misses
        inference.best_path("r-adidas", "r-nike", 100.0)
        assert inference.memo_misses == misses + 1

    def test_memo_disabled(self, two_shop_shared):
        inference = self.make_inference(two_shop_shared, path_memo=0)
        inference.best_path("r-adidas", "r-nike", 300.0)
        inference.best_path("r-adidas", "r-nike", 300.0)
        assert len(inference._path_memo) == 0
        assert (inference.memo_hits, inference.memo_misses) == (0, 0)

    def test_mutation_clears_the_memo(self, two_shop_shared):
        inference = self.make_inference(two_shop_shared)
        stale = inference.best_path("r-adidas", "r-nike", 300.0)
        inference.knowledge.observe(corpus()[0])
        fresh = inference.best_path("r-adidas", "r-nike", 300.0)
        assert fresh is not stale
        expected = SemanticsInference(
            MobilityKnowledge.from_sequences(corpus() + corpus()[:1], REGIONS),
            two_shop_shared.topology,
        ).best_path("r-adidas", "r-nike", 300.0)
        assert_paths_identical(expected, fresh)

    def test_flush_telemetry(self, two_shop_shared):
        inference = self.make_inference(two_shop_shared)
        registry = MetricsRegistry()
        inference.best_path("r-adidas", "r-nike", 300.0)
        inference.best_path("r-adidas", "r-nike", 300.0)
        with use_registry(registry):
            inference.flush_telemetry()
            inference.flush_telemetry()  # drained: no further increments
        assert registry.counter("trips_inference_memo_hits_total").value == 1
        assert (
            registry.counter("trips_inference_memo_misses_total").value == 1
        )
        assert (inference.memo_hits, inference.memo_misses) == (0, 0)


# ----------------------------------------------------------------------
# Satellite 3: no interleaving of mutations can serve a stale answer
# ----------------------------------------------------------------------
operations = st.lists(
    st.one_of(
        st.tuples(st.just("observe"), st.integers(0, 11)),
        st.tuples(st.just("fold"), st.integers(0, 11)),
        st.tuples(st.just("scale"), st.floats(0.25, 1.0, allow_nan=False)),
        st.tuples(st.just("roll"), st.just(0)),
    ),
    min_size=1,
    max_size=6,
)


class TestStalenessProperty:
    @given(
        retention=st.sampled_from(RETENTIONS),
        ops=operations,
        origin=region,
        destination=region,
        duration=gap_duration,
    )
    @settings(max_examples=60, deadline=None)
    def test_interleaved_mutations_equal_fresh_compile(
        self, two_shop_shared, retention, ops, origin, destination, duration
    ):
        """One long-lived compiled inference, mutated between queries,
        answers exactly like a fresh compile of the current counts —
        through folds, unfolds (window retirals), decay rescales and
        direct observes, in any order."""
        topology = two_shop_shared.topology
        store = KnowledgeStore(regions=REGIONS, retention=retention)
        live = SemanticsInference(store.knowledge, topology)
        sequences = corpus()
        clock = 0.0
        for op, argument in ops:
            if op == "observe":
                store.knowledge.observe(sequences[argument])
            elif op == "fold":
                store.fold(
                    PartialKnowledge.from_sequences(
                        [sequences[argument]], REGIONS
                    ),
                    start=clock,
                    end=clock + 60.0,
                )
                clock += 60.0
            elif op == "scale":
                store.knowledge.scale(argument)
            else:
                store.roll(now=clock)
            answer = live.best_path(origin, destination, duration)
            scratch = MobilityKnowledge.from_partials(
                [store.to_partial()], regions=REGIONS
            )
            scratch.sequences_seen = store.knowledge.sequences_seen
            expected = SemanticsInference(scratch, topology).best_path(
                origin, destination, duration
            )
            assert_paths_identical(expected, answer)


# ----------------------------------------------------------------------
# Engine matrix: buildings x backends, dropout-injected feeds
# ----------------------------------------------------------------------
def shopper_feed():
    """Long two-shop visits with a hall crossing — dropout windows cut
    real discontinuities into these (short feeds would swallow them)."""
    sequences = []
    for i in range(5):
        device = f"shopper-{i}"
        start = 50.0 * i
        first = stationary_sequence(
            device, at=(5.0, 15.0, 1), count=20, interval=15.0,
            start=start, seed=i,
        )
        crossing_start = start + 20 * 15.0
        crossing = [
            (5.0, 8.0, 1), (5.0, 4.0, 1), (9.0, 4.0, 1),
            (13.0, 4.0, 1), (15.0, 4.0, 1), (15.0, 8.0, 1),
        ]
        walk = [
            RawPositioningRecord(
                crossing_start + 8.0 * j, device, Point(x, y, f)
            )
            for j, (x, y, f) in enumerate(crossing)
        ]
        second = stationary_sequence(
            device, at=(15.0, 15.0, 1), count=20, interval=15.0,
            start=crossing_start + 60.0, seed=i + 50,
        )
        sequences.append(
            PositioningSequence(
                device, list(first.records) + walk + list(second.records)
            )
        )
    return sequences


def with_dropout(sequences, gap_seconds=240.0, gap_count=2):
    """Positioning dropouts make phase two actually infer paths."""
    injected = []
    for index, sequence in enumerate(sequences):
        dropped, _ = inject_dropout(
            sequence, gap_seconds=gap_seconds, gap_count=gap_count, seed=index
        )
        injected.append(dropped)
    return injected


@pytest.fixture(scope="module")
def building_cases(mall3, population):
    """(compiled translator, object translator, sequences, reference)."""
    cases = {}
    for name, model, sequences in (
        ("two_shop", make_two_shop_dsm(), with_dropout(shopper_feed())),
        (
            "mall3",
            mall3,
            with_dropout([device.raw for device in population]),
        ),
    ):
        compiled = Translator(model)
        objects = Translator(model, config=OBJECT_TRANSLATOR)
        reference = Engine(
            objects, EngineConfig(chunk_size=2)
        ).translate_batch(sequences)
        assert any(
            result.complement is not None and result.complement.gaps_found
            for result in reference.results
        )
        cases[name] = (compiled, objects, sequences, reference)
    return cases


@pytest.mark.parametrize("building", ["two_shop", "mall3"])
@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_engine_compiled_matches_objects(building_cases, building, backend):
    """The acceptance matrix: compiled == object inference, results and
    knowledge, for every building x backend cell."""
    compiled, _, sequences, reference = building_cases[building]
    engine = Engine(
        compiled,
        EngineConfig(backend=backend, workers=2, chunk_size=2),
    )
    batch = engine.translate_batch(sequences)
    assert batch.results == reference.results
    assert batch.knowledge == reference.knowledge


@pytest.mark.parametrize("retention", RETENTIONS)
def test_incremental_retention_matches_across_paths(retention):
    """Windowed ``translate_increment`` through a retention-managed store
    evolves identically whether phase two runs compiled or object
    inference — per-window results, knowledge bits, epoch lifecycle."""
    model = make_two_shop_dsm()
    sequences = with_dropout(shopper_feed())
    windows = [sequences[:2], sequences[2:4], sequences[4:]]

    def run(config):
        engine = Engine(Translator(model, config=config), EngineConfig(chunk_size=2))
        store = engine.make_store(retention)
        states = []
        for window in windows:
            result, _ = engine.translate_increment(window, store=store)
            store.roll()
            states.append(
                (
                    result.results,
                    store.to_partial(),
                    store.retained_epochs,
                    store.epochs_retired,
                )
            )
        return states

    for compiled_state, object_state in zip(
        run(TranslatorConfig()), run(OBJECT_TRANSLATOR)
    ):
        assert compiled_state == object_state


def test_live_finalize_matches_across_paths():
    """The live service's batch-equivalence holds on both inference
    paths, and the two finalized outputs are identical."""
    model = make_two_shop_dsm()
    records = sorted(
        (r for s in with_dropout(shopper_feed()) for r in s.records),
        key=lambda r: (r.timestamp, r.device_id),
    )
    window_seconds = 150.0

    def run(config):
        service = LiveTranslationService(
            {"shop": Translator(model, config=config)},
            EngineConfig(backend="threads", workers=2, chunk_size=2),
            LiveConfig(window_seconds=window_seconds),
        )
        with service:
            service.run_stream(RecordStream(iter(records)), venue_id="shop")
            return service.finalize()["shop"]

    compiled = run(TranslatorConfig())
    objects = run(OBJECT_TRANSLATOR)
    assert compiled.results == objects.results
    assert compiled.knowledge == objects.knowledge
    sequences = list(
        sequence_stream(RecordStream(iter(records)), window_seconds)
    )
    reference = Engine(
        Translator(model), EngineConfig(chunk_size=2)
    ).translate_batch(sequences)
    assert compiled.results == reference.results
    assert compiled.knowledge == reference.knowledge


def test_phase_two_chunk_flushes_compile_telemetry():
    """One compile tick per chunk runner; memo counters flush alongside."""
    from repro.core.translator import run_phase_one_chunk, run_phase_two_chunk

    translator = Translator(make_two_shop_dsm())
    chunk = run_phase_one_chunk(translator, with_dropout(shopper_feed()))
    knowledge = MobilityKnowledge.from_sequences(
        chunk.annotated, translator.knowledge_regions()
    )
    registry = MetricsRegistry()
    with use_registry(registry):
        run_phase_two_chunk(translator, (knowledge, chunk.annotated))
    assert registry.counter("trips_inference_compiles_total").value == 1
    with use_registry(registry):
        run_phase_two_chunk(translator, (knowledge, chunk.annotated))
    assert registry.counter("trips_inference_compiles_total").value == 1
    assert registry.counter("trips_inference_compile_hits_total").value == 1
