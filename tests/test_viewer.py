"""Unit tests for the viewer: timelines, map view, session, animation."""

import pytest

from repro.core import Translator
from repro.errors import ViewerError
from repro.timeutil import TimeRange
from repro.viewer import (
    DataSourceKind,
    DisplayPointPolicy,
    MapView,
    SvgDocument,
    Timeline,
    TimelineEntry,
    ViewerSession,
    build_timelines,
    render_ascii,
    timeline_from_positioning,
    timeline_from_semantics,
)


@pytest.fixture(scope="module")
def translated(mall3, simulated):
    return Translator(mall3).translate(simulated.raw)


class TestSvgDocument:
    def test_minimal_document(self):
        doc = SvgDocument(100, 50)
        doc.circle((10, 10), 2, fill="#ff0000", title="a dot")
        doc.text((20, 20), "hello & <world>")
        text = doc.to_string()
        assert text.startswith('<?xml version="1.0"')
        assert "<circle" in text and "<title>a dot</title>" in text
        assert "hello &amp; &lt;world&gt;" in text

    def test_groups_must_close(self):
        doc = SvgDocument(10, 10)
        doc.open_group("layer")
        with pytest.raises(ViewerError):
            doc.to_string()
        doc.close_group()
        assert '<g id="layer"' in doc.to_string()

    def test_close_without_open(self):
        with pytest.raises(ViewerError):
            SvgDocument(10, 10).close_group()

    def test_validation(self):
        with pytest.raises(ViewerError):
            SvgDocument(0, 10)
        doc = SvgDocument(10, 10)
        with pytest.raises(ViewerError):
            doc.polygon([(0, 0), (1, 1)])
        with pytest.raises(ViewerError):
            doc.circle((0, 0), 0)

    def test_save(self, tmp_path):
        doc = SvgDocument(10, 10)
        path = tmp_path / "out.svg"
        doc.save(path)
        assert path.read_text().endswith("</svg>")


class TestTimelines:
    def test_positioning_entries_are_instants(self, simulated):
        timeline = timeline_from_positioning(
            simulated.raw, DataSourceKind.RAW
        )
        assert len(timeline) == len(simulated.raw)
        assert all(e.is_instant for e in timeline)
        assert timeline[0].display_point == simulated.raw[0].location

    def test_semantics_temporally_middle(self, translated):
        timeline = timeline_from_semantics(
            translated.semantics,
            translated.cleaned,
            DisplayPointPolicy.TEMPORALLY_MIDDLE,
        )
        backed = [
            (entry, semantic)
            for entry, semantic in zip(timeline, translated.semantics)
            if semantic.record_indexes
        ]
        entry, semantic = backed[0]
        # Display point is one of the backing records' locations.
        backing = {translated.cleaned[i].location for i in semantic.record_indexes}
        assert entry.display_point in backing

    def test_semantics_spatially_central(self, translated):
        timeline = timeline_from_semantics(
            translated.semantics,
            translated.cleaned,
            DisplayPointPolicy.SPATIALLY_CENTRAL,
        )
        assert len(timeline) >= 1

    def test_inferred_semantics_use_region_anchor(self, mall3, translated):
        timeline = timeline_from_semantics(
            translated.semantics, translated.cleaned, model=mall3
        )
        # Every semantic must have produced an entry when a model is given.
        assert len(timeline) == len(translated.semantics)

    def test_covered_by_window(self, simulated):
        timeline = timeline_from_positioning(
            simulated.raw, DataSourceKind.RAW
        )
        span = simulated.raw.time_range
        window = TimeRange(span.start, span.start + span.duration / 10)
        covered = timeline.covered_by(window)
        assert 0 < len(covered) < len(timeline)
        assert all(e.time_range.overlaps(window) for e in covered)

    def test_at_time(self, translated):
        timeline = timeline_from_semantics(
            translated.semantics, translated.cleaned
        )
        first = timeline[0]
        found = timeline.at_time(first.time_range.middle)
        assert found is not None
        assert found.time_range.contains(first.time_range.middle)

    def test_at_time_before_start(self, translated):
        timeline = timeline_from_semantics(
            translated.semantics, translated.cleaned
        )
        assert timeline.at_time(timeline.time_range.start - 1e6) is None

    def test_on_floor(self, simulated):
        timeline = timeline_from_positioning(
            simulated.raw, DataSourceKind.RAW
        )
        per_floor = sum(
            len(timeline.on_floor(f)) for f in simulated.raw.floors_visited
        )
        assert per_floor == len(timeline)

    def test_build_timelines_all_sources(self, simulated, translated):
        timelines = build_timelines(
            raw=simulated.raw,
            cleaned=translated.cleaned,
            semantics=translated.semantics,
            ground_truth=simulated.ground_truth,
        )
        assert set(timelines) == set(DataSourceKind)

    def test_empty_timeline_time_range_raises(self):
        timeline = Timeline(DataSourceKind.RAW, [])
        with pytest.raises(ViewerError):
            timeline.time_range


class TestMapView:
    def test_renders_entities_and_regions(self, mall3):
        doc = MapView(mall3).render(1)
        text = doc.to_string()
        assert 'id="entities"' in text
        assert 'id="regions"' in text
        assert "Cashier 1F" in text

    def test_overlays_respect_visibility(self, mall3, simulated, translated):
        view = MapView(mall3)
        timelines = build_timelines(
            raw=simulated.raw, semantics=translated.semantics,
            cleaned=translated.cleaned,
        )
        with_raw = view.render(1, timelines).to_string()
        view.legend.set_visible(DataSourceKind.RAW, False)
        without_raw = view.render(1, timelines).to_string()
        assert "overlay-raw" in with_raw
        assert "overlay-raw" not in without_raw

    def test_unknown_floor_rejected(self, mall3):
        with pytest.raises(ViewerError):
            MapView(mall3).render(99)

    def test_scale_validation(self, mall3):
        with pytest.raises(ViewerError):
            MapView(mall3, scale=0)

    def test_legend_toggle(self, mall3):
        view = MapView(mall3)
        assert view.legend.is_visible(DataSourceKind.RAW)
        assert view.legend.toggle(DataSourceKind.RAW) is False
        assert DataSourceKind.RAW not in view.legend.visible_sources()


class TestViewerSession:
    def test_select_semantic_synchronizes(self, mall3, simulated, translated):
        session = ViewerSession(
            mall3, translated, ground_truth=simulated.ground_truth
        )
        covered = session.select_semantic(0)
        window = session.semantics_timeline[0].time_range
        for source, entries in covered.items():
            for entry in entries:
                assert entry.time_range.overlaps(window)
        assert len(covered[DataSourceKind.SEMANTICS]) >= 1

    def test_select_switches_floor(self, mall3, simulated, translated):
        session = ViewerSession(mall3, translated)
        entry = session.semantics_timeline[0]
        session.select_semantic(0)
        assert session.current_floor == entry.display_point.floor

    def test_select_out_of_range(self, mall3, translated):
        session = ViewerSession(mall3, translated)
        with pytest.raises(ViewerError):
            session.select_semantic(10**6)

    def test_switch_floor_validation(self, mall3, translated):
        session = ViewerSession(mall3, translated)
        session.switch_floor(2)
        assert session.current_floor == 2
        with pytest.raises(ViewerError):
            session.switch_floor(42)

    def test_render_with_selection(self, mall3, simulated, translated):
        session = ViewerSession(
            mall3, translated, ground_truth=simulated.ground_truth
        )
        session.select_semantic(0)
        text = session.render().to_string()
        assert 'id="selection"' in text

    def test_animation_frames(self, mall3, simulated, translated):
        session = ViewerSession(
            mall3, translated, ground_truth=simulated.ground_truth
        )
        frames = session.animate(step_seconds=60.0)
        expected = int(simulated.ground_truth.duration // 60) + 1
        assert len(frames) == pytest.approx(expected, abs=2)
        assert any(f.current_semantic_label for f in frames)

    def test_animation_validation(self, mall3, translated):
        session = ViewerSession(mall3, translated)
        with pytest.raises(ViewerError):
            session.animate(step_seconds=0)


class TestAsciiMap:
    def test_renders_rooms_and_doors(self, two_shop_shared):
        art = render_ascii(two_shop_shared, 1, cell_size=2.0)
        assert "@" in art  # entrance
        assert "+" in art  # doors
        assert "." in art  # hall
        assert "A" in art  # first room letter

    def test_overlay_points(self, two_shop_shared):
        from repro.geometry import Point

        art = render_ascii(
            two_shop_shared, 1, cell_size=2.0, overlay=[Point(15, 5, 1)]
        )
        assert "*" in art

    def test_validation(self, two_shop_shared):
        with pytest.raises(ViewerError):
            render_ascii(two_shop_shared, 1, cell_size=0)
