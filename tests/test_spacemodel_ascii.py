"""Unit tests for the ASCII floorplan parser."""

import pytest

from repro.dsm import EntityKind, validate_dsm
from repro.errors import DSMError
from repro.geometry import Point
from repro.spacemodel import AsciiFloorplanParser, RoomLegend, build_dsm

SIMPLE = [
    "##########",
    "#AAA#BBBB#",
    "#AAA#BBBB#",
    "#.D....D.#",
    "#@.......#",
    "##########",
]


@pytest.fixture
def parsed():
    parser = AsciiFloorplanParser(cell_size=2.0)
    legend = {
        "A": RoomLegend("Adidas", "shop"),
        "B": RoomLegend("Nike", "shop"),
    }
    return parser.parse(SIMPLE, floor=1, legend=legend)


class TestParsing:
    def test_rooms_extracted(self, parsed):
        rooms = [
            s for s in parsed.canvas.shapes() if s.kind is EntityKind.ROOM
        ]
        assert sorted(s.name for s in rooms) == ["Adidas", "Nike"]

    def test_room_dimensions(self, parsed):
        adidas = next(
            s for s in parsed.canvas.shapes() if s.name == "Adidas"
        )
        # 3 cells x 2 cells at cell_size 2.0.
        assert adidas.shape.bounds.width == 6.0
        assert adidas.shape.bounds.height == 4.0

    def test_rooms_tagged(self, parsed):
        adidas = next(
            s for s in parsed.canvas.shapes() if s.name == "Adidas"
        )
        assert adidas.semantic_tag == "shop"

    def test_corridors_cover_walkable(self, parsed):
        assert parsed.corridor_count >= 1

    def test_doors_present(self, parsed):
        doors = [
            s for s in parsed.canvas.shapes() if s.kind is EntityKind.DOOR
        ]
        # Two room doors + one entrance.
        assert len(doors) >= 3
        assert any(s.properties.get("entrance") for s in doors)

    def test_non_rectangular_room_rejected(self):
        grid = [
            "#####",
            "#AA.#",
            "#.AA#",
            "#####",
        ]
        with pytest.raises(DSMError):
            AsciiFloorplanParser().parse(grid, floor=1)

    def test_door_touching_no_room_rejected(self):
        grid = [
            "#####",
            "#...#",
            "#.D.#",
            "#...#",
            "#####",
        ]
        with pytest.raises(DSMError):
            AsciiFloorplanParser().parse(grid, floor=1)

    def test_empty_grid_rejected(self):
        with pytest.raises(DSMError):
            AsciiFloorplanParser().parse([], floor=1)

    def test_ragged_rows_padded(self):
        grid = [
            "######",
            "#AA..#",
            "#AA.@#",
            "####",  # short row treated as wall-padded
        ]
        parsed = AsciiFloorplanParser().parse(
            grid, 1, {"A": RoomLegend("A-room")}
        )
        assert parsed.canvas is not None

    def test_bad_cell_size(self):
        with pytest.raises(DSMError):
            AsciiFloorplanParser(cell_size=0)


class TestParsedTopology:
    def test_builds_valid_connected_dsm(self, parsed):
        model = build_dsm([parsed.canvas], name="ascii-test")
        assert validate_dsm(model, require_connected=True) == []

    def test_room_reachable_from_entrance(self, parsed):
        model = build_dsm([parsed.canvas])
        adidas = next(
            e for e in model.partitions() if e.name == "Adidas"
        )
        entrance = next(d for d in model.doors() if d.is_entrance)
        assert model.topology.reachable(entrance.anchor, adidas.anchor)

    def test_door_anchor_attaches_to_room_and_corridor(self, parsed):
        model = build_dsm([parsed.canvas])
        topology = model.topology
        interior_doors = [
            d for d in model.doors() if not d.is_entrance
            and "opening" not in (d.name or "")
        ]
        for door in interior_doors:
            connected = topology.partitions_of_door(door.entity_id)
            kinds = {model.entity(p).kind for p in connected}
            assert EntityKind.ROOM in kinds

    def test_stairs_across_floors(self):
        grid = [
            "#####",
            "#AA.#",
            "#.D.#".replace("D", "."),  # plain corridor
            "#.S.#",
            "#####",
        ]
        parser = AsciiFloorplanParser(cell_size=2.0)
        floors = [parser.parse(grid, floor=f).canvas for f in (1, 2)]
        model = build_dsm(floors, validate=False)
        stairs = model.vertical_connectors()
        assert len(stairs) == 2
        assert stairs[0].stack == stairs[1].stack
        hall_1 = model.partition_at(stairs[0].anchor)
        hall_2 = model.partition_at(stairs[1].anchor)
        assert model.topology.partitions_connected(
            hall_1.entity_id, hall_2.entity_id
        )

    def test_elevator_char(self):
        grid = [
            "####",
            "#V.#",
            "#..#",
            "####",
        ]
        parsed = AsciiFloorplanParser().parse(grid, floor=1)
        shapes = parsed.canvas.shapes()
        assert any(s.kind is EntityKind.ELEVATOR for s in shapes)


class TestBuildings:
    def test_mall_structure(self, mall):
        assert mall.name == "hangzhou-style-mall"
        assert len(mall.floor_numbers) == 2
        # Adidas and Nike are on a sports floor somewhere in the catalog.
        names = {r.name for r in mall.regions()}
        assert "Center Hall 1F" in names
        assert "Cashier 1F" in names

    def test_mall_seven_floors_has_adidas_nike(self):
        from repro.buildings import build_mall

        full = build_mall()
        names = {r.name for r in full.regions()}
        assert {"Adidas", "Nike"} <= names
        assert len(full.floor_numbers) == 7

    def test_mall_validates(self, mall):
        assert validate_dsm(mall, require_connected=True) == []

    def test_mall_entrances_on_ground(self, mall):
        entrances = [d for d in mall.doors() if d.is_entrance]
        assert entrances and all(d.floor == 1 for d in entrances)

    def test_office_builds_and_validates(self):
        from repro.buildings import build_office

        office = build_office()
        assert validate_dsm(office, require_connected=True) == []
        assert office.region_count >= 15

    def test_airport_builds_and_validates(self):
        from repro.buildings import build_airport

        airport = build_airport(gate_count=4)
        assert validate_dsm(airport, require_connected=True) == []
        gates = airport.regions(category="gate")
        assert len(gates) == 4

    def test_mall_region_id_helper(self, mall):
        from repro.buildings import mall_region_id

        region_id = mall_region_id(mall, "Cashier 1F")
        assert mall.region(region_id).name == "Cashier 1F"
        with pytest.raises(DSMError):
            mall_region_id(mall, "Nonexistent Shop")

    def test_mall_config_validation(self):
        from repro.buildings import MallConfig

        with pytest.raises(DSMError):
            MallConfig(floors=9)
        with pytest.raises(DSMError):
            MallConfig(units_per_side=1)
