"""Shared fixtures: a small hand-built DSM, buildings, simulated devices.

Expensive artifacts (mall DSM, simulated populations) are session-scoped;
tests must treat them as immutable.
"""

from __future__ import annotations

import pytest

from repro.buildings import MallConfig, build_mall
from repro.dsm import (
    DigitalSpaceModel,
    EntityKind,
    IndoorEntity,
    SemanticRegion,
    SemanticTag,
)
from repro.geometry import Point, Polygon
from repro.positioning import PositioningSequence, RawPositioningRecord
from repro.simulation import MobilitySimulator, SHOPPER


def make_two_shop_dsm() -> DigitalSpaceModel:
    """A hall with two shops (Adidas, Nike) and a cashier on floor 1.

    Layout (y up)::

        +-------+-------+-------+
        | Adidas| Nike  |Cashier|   y 10..20
        +--d----+--d----+--d----+
        |        hall           |   y 0..10
        +-----------------------+
          x 0..30, entrance at (0, 5)
    """
    model = DigitalSpaceModel(name="two-shop")
    model.add_entity(
        IndoorEntity("hall", EntityKind.HALLWAY, Polygon.rectangle(0, 0, 30, 10))
    )
    model.add_entity(
        IndoorEntity(
            "shop-adidas", EntityKind.ROOM, Polygon.rectangle(0, 10, 10, 20),
            name="Adidas",
        )
    )
    model.add_entity(
        IndoorEntity(
            "shop-nike", EntityKind.ROOM, Polygon.rectangle(10, 10, 20, 20),
            name="Nike",
        )
    )
    model.add_entity(
        IndoorEntity(
            "shop-cashier", EntityKind.ROOM, Polygon.rectangle(20, 10, 30, 20),
            name="Cashier",
        )
    )
    # Door anchors nudged into the hall so paths avoid boundary lines.
    model.add_entity(IndoorEntity("door-adidas", EntityKind.DOOR, Point(5, 9.7)))
    model.add_entity(IndoorEntity("door-nike", EntityKind.DOOR, Point(15, 9.7)))
    model.add_entity(IndoorEntity("door-cashier", EntityKind.DOOR, Point(25, 9.7)))
    model.add_entity(
        IndoorEntity(
            "door-main", EntityKind.DOOR, Point(0, 5),
            properties={"entrance": True},
        )
    )
    shop_tag = SemanticTag("shop", "shop")
    model.add_region(
        SemanticRegion("r-adidas", "Adidas", shop_tag, entity_ids=("shop-adidas",))
    )
    model.add_region(
        SemanticRegion("r-nike", "Nike", shop_tag, entity_ids=("shop-nike",))
    )
    model.add_region(
        SemanticRegion(
            "r-cashier", "Cashier", SemanticTag("cashier", "cashier"),
            entity_ids=("shop-cashier",),
        )
    )
    model.add_region(
        SemanticRegion(
            "r-hall", "Hall", SemanticTag("hall", "hallway"),
            entity_ids=("hall",),
        )
    )
    return model


@pytest.fixture
def two_shop() -> DigitalSpaceModel:
    """A fresh small DSM per test (mutable)."""
    return make_two_shop_dsm()


@pytest.fixture(scope="session")
def two_shop_shared() -> DigitalSpaceModel:
    """A shared small DSM for read-only tests."""
    return make_two_shop_dsm()


@pytest.fixture(scope="session")
def mall() -> DigitalSpaceModel:
    """A 2-floor mall (read-only)."""
    return build_mall(MallConfig(floors=2))


@pytest.fixture(scope="session")
def mall3() -> DigitalSpaceModel:
    """A 3-floor mall (read-only), for floor-error tests."""
    return build_mall(MallConfig(floors=3))


@pytest.fixture(scope="session")
def simulated(mall3):
    """One simulated shopper in the 3-floor mall (read-only)."""
    simulator = MobilitySimulator(mall3, seed=7)
    return simulator.simulate_device("3a.0001.14", SHOPPER, seed=42)


@pytest.fixture(scope="session")
def population(mall3):
    """Five simulated shoppers (read-only)."""
    simulator = MobilitySimulator(mall3, seed=9)
    return simulator.simulate_population(count=5, seed=9)


def walk_sequence(
    device_id: str = "dev",
    points: list[tuple[float, float, int]] | None = None,
    start: float = 0.0,
    interval: float = 5.0,
) -> PositioningSequence:
    """A positioning sequence visiting the given (x, y, floor) points."""
    if points is None:
        points = [(1 + i, 5, 1) for i in range(10)]
    records = [
        RawPositioningRecord(start + i * interval, device_id, Point(x, y, f))
        for i, (x, y, f) in enumerate(points)
    ]
    return PositioningSequence(device_id, records)


def stationary_sequence(
    device_id: str = "dev",
    at: tuple[float, float, int] = (5.0, 15.0, 1),
    count: int = 30,
    interval: float = 5.0,
    jitter: float = 0.3,
    start: float = 0.0,
    seed: int = 0,
) -> PositioningSequence:
    """A noisy dwell at one location."""
    import numpy as np

    rng = np.random.default_rng(seed)
    records = []
    for i in range(count):
        dx, dy = rng.normal(0.0, jitter, size=2)
        records.append(
            RawPositioningRecord(
                start + i * interval,
                device_id,
                Point(at[0] + dx, at[1] + dy, at[2]),
            )
        )
    return PositioningSequence(device_id, records)
