"""Unit tests for entities, regions and the DigitalSpaceModel container."""

import pytest

from repro.dsm import (
    DigitalSpaceModel,
    EntityKind,
    GridIndex,
    IndoorEntity,
    SemanticRegion,
    SemanticTag,
)
from repro.errors import DSMError
from repro.geometry import BoundingBox, Point, Polygon


class TestEntityKind:
    def test_partitions(self):
        assert EntityKind.ROOM.is_partition
        assert EntityKind.HALLWAY.is_partition
        assert not EntityKind.DOOR.is_partition

    def test_vertical_connectors(self):
        assert EntityKind.STAIRCASE.is_vertical_connector
        assert EntityKind.ELEVATOR.is_vertical_connector
        assert not EntityKind.ROOM.is_vertical_connector


class TestIndoorEntity:
    def test_requires_id(self):
        with pytest.raises(DSMError):
            IndoorEntity("", EntityKind.DOOR, Point(0, 0))

    def test_partition_needs_area_shape(self):
        with pytest.raises(DSMError):
            IndoorEntity("r", EntityKind.ROOM, Point(0, 0))

    def test_door_point_allowed(self):
        door = IndoorEntity("d", EntityKind.DOOR, Point(1, 2, 3))
        assert door.floor == 3 and door.anchor == Point(1, 2, 3)

    def test_entrance_flag(self):
        plain = IndoorEntity("d1", EntityKind.DOOR, Point(0, 0))
        flagged = IndoorEntity(
            "d2", EntityKind.DOOR, Point(0, 0), properties={"entrance": True}
        )
        assert not plain.is_entrance and flagged.is_entrance

    def test_stack_property(self):
        stair = IndoorEntity(
            "s", EntityKind.STAIRCASE, Polygon.rectangle(0, 0, 2, 2),
            properties={"stack": "A"},
        )
        assert stair.stack == "A"
        room = IndoorEntity("r", EntityKind.ROOM, Polygon.rectangle(0, 0, 2, 2))
        assert room.stack is None


class TestSemanticRegion:
    def test_needs_shape_or_members(self):
        with pytest.raises(DSMError):
            SemanticRegion("r", "R", SemanticTag("t"))

    def test_category_from_tag(self):
        region = SemanticRegion(
            "r", "Nike", SemanticTag("shop", "shop"),
            shape=Polygon.rectangle(0, 0, 5, 5),
        )
        assert region.category == "shop"

    def test_contains_point_in_shape(self):
        region = SemanticRegion(
            "r", "R", SemanticTag("t"), shape=Polygon.rectangle(0, 0, 5, 5)
        )
        assert region.contains_point_in_shape(Point(1, 1))
        assert not region.contains_point_in_shape(Point(9, 9))


class TestModelMutation:
    def test_duplicate_entity_rejected(self, two_shop):
        with pytest.raises(DSMError):
            two_shop.add_entity(
                IndoorEntity("hall", EntityKind.HALLWAY,
                             Polygon.rectangle(0, 0, 1, 1))
            )

    def test_duplicate_region_rejected(self, two_shop):
        with pytest.raises(DSMError):
            two_shop.add_region(
                SemanticRegion("r-adidas", "X", SemanticTag("t"),
                               entity_ids=("hall",))
            )

    def test_region_unknown_member_rejected(self, two_shop):
        with pytest.raises(DSMError):
            two_shop.add_region(
                SemanticRegion("r-x", "X", SemanticTag("t"),
                               entity_ids=("nope",))
            )

    def test_floor_autoregistered(self, two_shop):
        two_shop.add_entity(
            IndoorEntity("up", EntityKind.ROOM,
                         Polygon.rectangle(0, 0, 5, 5, floor=9))
        )
        assert 9 in two_shop.floor_numbers

    def test_remove_entity_referenced_by_region_fails(self, two_shop):
        with pytest.raises(DSMError):
            two_shop.remove_entity("shop-nike")

    def test_remove_region_then_entity(self, two_shop):
        two_shop.remove_region("r-nike")
        two_shop.remove_entity("shop-nike")
        assert not two_shop.has_entity("shop-nike")

    def test_remove_unknown_raises(self, two_shop):
        with pytest.raises(DSMError):
            two_shop.remove_entity("ghost")
        with pytest.raises(DSMError):
            two_shop.remove_region("ghost")


class TestModelQueries:
    def test_counts(self, two_shop_shared):
        assert two_shop_shared.entity_count == 8
        assert two_shop_shared.region_count == 4

    def test_kind_filters(self, two_shop_shared):
        assert len(two_shop_shared.doors()) == 4
        assert len(two_shop_shared.partitions()) == 4
        assert two_shop_shared.partitions(floor=2) == []

    def test_unknown_lookup_raises(self, two_shop_shared):
        with pytest.raises(DSMError):
            two_shop_shared.entity("nope")
        with pytest.raises(DSMError):
            two_shop_shared.region("nope")

    def test_regions_by_category(self, two_shop_shared):
        shops = two_shop_shared.regions(category="shop")
        assert [r.name for r in shops] == ["Adidas", "Nike"]

    def test_partition_at(self, two_shop_shared):
        assert two_shop_shared.partition_at(Point(5, 15)).entity_id == "shop-adidas"
        assert two_shop_shared.partition_at(Point(15, 5)).entity_id == "hall"
        assert two_shop_shared.partition_at(Point(50, 50)) is None

    def test_partition_at_prefers_smallest(self, two_shop):
        # An overlapping kiosk inside the hall should win point queries.
        two_shop.add_entity(
            IndoorEntity("kiosk", EntityKind.ROOM,
                         Polygon.rectangle(12, 2, 14, 4))
        )
        assert two_shop.partition_at(Point(13, 3)).entity_id == "kiosk"

    def test_nearest_partition_snaps(self, two_shop_shared):
        found = two_shop_shared.nearest_partition(Point(-2, 5), max_distance=5)
        assert found is not None
        partition, distance = found
        assert partition.entity_id == "hall" and distance == 2.0

    def test_nearest_partition_out_of_range(self, two_shop_shared):
        assert two_shop_shared.nearest_partition(Point(-50, 5), 5.0) is None

    def test_regions_at(self, two_shop_shared):
        names = [r.name for r in two_shop_shared.regions_at(Point(5, 15))]
        assert names == ["Adidas"]

    def test_primary_region_at(self, two_shop_shared):
        region = two_shop_shared.primary_region_at(Point(25, 15))
        assert region.name == "Cashier"
        assert two_shop_shared.primary_region_at(Point(50, 50)) is None

    def test_region_anchor_from_members(self, two_shop_shared):
        anchor = two_shop_shared.region_anchor("r-adidas")
        assert anchor.almost_equals(Point(5, 15))

    def test_region_floor(self, two_shop_shared):
        assert two_shop_shared.region_floor("r-nike") == 1

    def test_floor_bounds(self, two_shop_shared):
        bounds = two_shop_shared.floor_bounds(1)
        assert bounds.max_x == 30 and bounds.max_y == 20

    def test_floor_bounds_empty_floor_raises(self, two_shop_shared):
        with pytest.raises(DSMError):
            two_shop_shared.floor_bounds(99)

    def test_regions_of_partition(self, two_shop_shared):
        regions = two_shop_shared.regions_of_partition("shop-nike")
        assert [r.region_id for r in regions] == ["r-nike"]


class TestGridIndex:
    def test_insert_and_query(self):
        index = GridIndex(cell_size=5.0)
        index.insert("a", BoundingBox(0, 0, 10, 10))
        index.insert("b", BoundingBox(20, 20, 30, 30))
        assert index.candidates_at(Point(5, 5)) == ["a"]
        assert index.candidates_at(Point(25, 25)) == ["b"]
        assert index.candidates_at(Point(15, 15)) == []

    def test_duplicate_key_rejected(self):
        index = GridIndex()
        index.insert("a", BoundingBox(0, 0, 1, 1))
        with pytest.raises(ValueError):
            index.insert("a", BoundingBox(0, 0, 1, 1))

    def test_range_query_deduplicates(self):
        index = GridIndex(cell_size=2.0)
        index.insert("big", BoundingBox(0, 0, 20, 20))
        found = index.candidates_in(BoundingBox(1, 1, 15, 15))
        assert found == ["big"]

    def test_bad_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex(cell_size=0.0)
