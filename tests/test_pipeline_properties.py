"""Property-based tests of cross-module pipeline invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RawDataCleaner, Translator, score_semantics
from repro.core.semantics import (
    EVENT_PASS_BY,
    EVENT_STAY,
    MobilitySemantic,
    MobilitySemanticsSequence,
)
from repro.geometry import Point
from repro.positioning import (
    PositioningSequence,
    RawPositioningRecord,
    inject_gaussian_noise,
)
from repro.timeutil import TimeRange

from .conftest import make_two_shop_dsm

TWO_SHOP = make_two_shop_dsm()
_ = TWO_SHOP.topology  # build once for all examples


@st.composite
def indoor_sequences(draw):
    """Random sequences whose points lie inside the two-shop building."""
    count = draw(st.integers(min_value=2, max_value=40))
    interval = draw(st.floats(min_value=2.0, max_value=15.0))
    records = []
    for i in range(count):
        x = draw(st.floats(min_value=0.5, max_value=29.5))
        y = draw(st.floats(min_value=0.5, max_value=19.5))
        records.append(
            RawPositioningRecord(i * interval, "dev", Point(x, y, 1))
        )
    return PositioningSequence("dev", records)


class TestCleaningInvariants:
    @settings(max_examples=25, deadline=None)
    @given(indoor_sequences())
    def test_cleaning_preserves_structure(self, sequence):
        """Cleaning never changes count, order, timestamps or device."""
        result = RawDataCleaner(TWO_SHOP.topology).clean(sequence)
        cleaned = result.cleaned
        assert len(cleaned) == len(sequence)
        assert cleaned.device_id == sequence.device_id
        assert cleaned.timestamps == sequence.timestamps

    @settings(max_examples=25, deadline=None)
    @given(indoor_sequences())
    def test_untouched_records_identical(self, sequence):
        """Records not flagged invalid pass through bit-identically."""
        result = RawDataCleaner(TWO_SHOP.topology).clean(sequence)
        touched = set(result.report.invalid_indexes)
        for index in range(len(sequence)):
            if index not in touched:
                assert result.cleaned[index] == sequence[index]

    @settings(max_examples=15, deadline=None)
    @given(indoor_sequences(), st.floats(min_value=0.0, max_value=2.0))
    def test_cleaning_idempotent_on_clean_output(self, sequence, sigma):
        """Cleaning an already-cleaned sequence finds little to repair."""
        noisy = inject_gaussian_noise(sequence, sigma, seed=1)
        cleaner = RawDataCleaner(TWO_SHOP.topology)
        once = cleaner.clean(noisy).cleaned
        twice = cleaner.clean(once)
        assert twice.report.invalid_count <= max(2, len(sequence) // 10)


class TestTranslationInvariants:
    @settings(max_examples=10, deadline=None)
    @given(indoor_sequences())
    def test_semantics_sorted_and_bounded(self, sequence):
        result = Translator(TWO_SHOP).translate(sequence)
        starts = [s.time_range.start for s in result.semantics]
        assert starts == sorted(starts)
        window = sequence.time_range
        for semantic in result.semantics:
            if not semantic.inferred:
                assert semantic.time_range.start >= window.start - 1e-6
                assert semantic.time_range.end <= window.end + 1e-6

    @settings(max_examples=10, deadline=None)
    @given(indoor_sequences())
    def test_semantics_regions_exist(self, sequence):
        result = Translator(TWO_SHOP).translate(sequence)
        for semantic in result.semantics:
            assert TWO_SHOP.has_region(semantic.region_id)

    @settings(max_examples=10, deadline=None)
    @given(indoor_sequences())
    def test_record_indexes_valid_and_disjoint(self, sequence):
        result = Translator(TWO_SHOP).translate(sequence)
        seen: set[int] = set()
        for semantic in result.semantics:
            for index in semantic.record_indexes:
                assert 0 <= index < len(sequence)
                assert index not in seen
                seen.add(index)


@st.composite
def semantics_sequences(draw):
    count = draw(st.integers(min_value=1, max_value=12))
    cursor = 0.0
    triplets = []
    for _ in range(count):
        gap = draw(st.floats(min_value=0.0, max_value=300.0))
        duration = draw(st.floats(min_value=1.0, max_value=900.0))
        region = draw(st.sampled_from(["r-a", "r-b", "r-c"]))
        event = draw(st.sampled_from([EVENT_STAY, EVENT_PASS_BY]))
        start = cursor + gap
        triplets.append(
            MobilitySemantic(
                event=event,
                region_id=region,
                region_name=region.upper(),
                time_range=TimeRange(start, start + duration),
                confidence=draw(st.floats(min_value=0.0, max_value=1.0)),
                inferred=draw(st.booleans()),
            )
        )
        cursor = start + duration
    return MobilitySemanticsSequence("dev", triplets)


class TestSemanticsProperties:
    @settings(max_examples=50)
    @given(semantics_sequences())
    def test_dict_roundtrip(self, sequence):
        clone = MobilitySemanticsSequence.from_dict(sequence.to_dict())
        assert clone == sequence

    @settings(max_examples=50)
    @given(semantics_sequences())
    def test_merge_never_grows(self, sequence):
        assert len(sequence.merged_consecutive()) <= len(sequence)
        assert len(sequence.merged_same_region()) <= len(sequence)

    @settings(max_examples=50)
    @given(semantics_sequences())
    def test_merge_preserves_span_and_regions(self, sequence):
        merged = sequence.merged_same_region()
        assert merged.time_range == sequence.time_range
        # Deduplicated region order is invariant under merging.
        def dedup(ids):
            out = []
            for item in ids:
                if not out or out[-1] != item:
                    out.append(item)
            return out

        assert dedup(merged.region_ids) == dedup(sequence.region_ids)

    @settings(max_examples=50)
    @given(semantics_sequences())
    def test_self_score_is_perfect(self, sequence):
        score = score_semantics(sequence, sequence)
        assert score.region_time_accuracy == pytest.approx(1.0)
        assert score.edit_distance == 0

    @settings(max_examples=30)
    @given(semantics_sequences(), st.floats(min_value=1.0, max_value=500.0))
    def test_gaps_respect_threshold(self, sequence, threshold):
        for _, gap in sequence.gaps(threshold):
            assert gap.duration > threshold
