"""Unit tests for trajectory measurements (the feature primitives)."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry import (
    Point,
    count_turns,
    covering_range,
    floor_changes,
    location_variance,
    max_speed,
    mean_speed,
    path_length,
    radius_of_gyration,
    speeds,
    straightness,
)


def line_points(n=5, step=1.0):
    return [Point(i * step, 0) for i in range(n)]


class TestPathLength:
    def test_straight(self):
        assert path_length(line_points(5)) == 4.0

    def test_single_point(self):
        assert path_length([Point(0, 0)]) == 0.0

    def test_zigzag(self):
        pts = [Point(0, 0), Point(3, 4), Point(6, 0)]
        assert path_length(pts) == 10.0


class TestVariance:
    def test_identical_points_zero(self):
        assert location_variance([Point(2, 3)] * 5) == 0.0

    def test_known_value(self):
        pts = [Point(-1, 0), Point(1, 0)]
        assert location_variance(pts) == pytest.approx(1.0)

    def test_radius_of_gyration(self):
        pts = [Point(-1, 0), Point(1, 0)]
        assert radius_of_gyration(pts) == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            location_variance([])


class TestCoveringRange:
    def test_single_point(self):
        assert covering_range([Point(3, 3)]) == 0.0

    def test_diagonal(self):
        assert covering_range([Point(0, 0), Point(3, 4)]) == 5.0


class TestTurns:
    def test_straight_walk_no_turns(self):
        assert count_turns(line_points(10)) == 0

    def test_right_angle(self):
        pts = [Point(0, 0), Point(5, 0), Point(5, 5)]
        assert count_turns(pts) == 1

    def test_u_turn(self):
        pts = [Point(0, 0), Point(5, 0), Point(0, 0.001)]
        assert count_turns(pts) == 1

    def test_threshold_filters_gentle_curves(self):
        pts = [Point(0, 0), Point(5, 0), Point(10, 1)]
        assert count_turns(pts, angle_threshold=math.pi / 4) == 0

    def test_stationary_jitter_ignored(self):
        pts = [Point(0, 0), Point(0, 0), Point(0, 0)]
        assert count_turns(pts) == 0


class TestFloorChanges:
    def test_no_changes(self):
        assert floor_changes([1, 1, 1]) == 0

    def test_counts_transitions(self):
        assert floor_changes([1, 2, 2, 3, 2]) == 3


class TestStraightness:
    def test_straight_is_one(self):
        assert straightness(line_points(5)) == pytest.approx(1.0)

    def test_round_trip_is_zero(self):
        pts = [Point(0, 0), Point(10, 0), Point(0, 0)]
        assert straightness(pts) == pytest.approx(0.0)

    def test_stationary_is_zero(self):
        assert straightness([Point(1, 1)] * 3) == 0.0


class TestSpeeds:
    def test_per_step(self):
        pts = [Point(0, 0), Point(10, 0), Point(10, 5)]
        times = [0.0, 5.0, 10.0]
        assert speeds(pts, times) == [2.0, 1.0]

    def test_zero_duration_steps_skipped(self):
        pts = [Point(0, 0), Point(10, 0)]
        assert speeds(pts, [0.0, 0.0]) == []

    def test_misaligned_raises(self):
        with pytest.raises(GeometryError):
            speeds([Point(0, 0)], [0.0, 1.0])

    def test_mean_speed(self):
        pts = [Point(0, 0), Point(10, 0), Point(10, 10)]
        assert mean_speed(pts, [0.0, 5.0, 10.0]) == 2.0

    def test_mean_speed_single(self):
        assert mean_speed([Point(0, 0)], [0.0]) == 0.0

    def test_max_speed(self):
        pts = [Point(0, 0), Point(10, 0), Point(10, 5)]
        assert max_speed(pts, [0.0, 5.0, 10.0]) == 2.0

    def test_max_speed_empty(self):
        assert max_speed([Point(0, 0)], [0.0]) == 0.0
