"""Unit tests for the Mobility Semantics Annotator."""

import pytest

from repro.core.annotation import (
    AnnotatorConfig,
    MobilitySemanticsAnnotator,
    SplitterConfig,
)
from repro.core.semantics import EVENT_PASS_BY, EVENT_STAY
from repro.errors import AnnotationError
from repro.geometry import Point
from repro.positioning import PositioningSequence, RawPositioningRecord

from .conftest import stationary_sequence


def shopping_trip():
    """Dwell in Adidas -> walk through the hall -> dwell in Cashier."""
    dwell_a = stationary_sequence("oi", at=(5, 15, 1), count=40, seed=1)
    walk = [
        RawPositioningRecord(
            200 + i * 4.0, "oi", Point(5 + i * 2.2, 5.0, 1)
        )
        for i in range(10)
    ]
    dwell_b = stationary_sequence(
        "oi", at=(25, 15, 1), count=40, start=250.0, seed=2
    )
    return PositioningSequence("oi", list(dwell_a) + walk + list(dwell_b))


class TestAnnotator:
    def test_produces_stay_hall_stay(self, two_shop_shared):
        annotator = MobilitySemanticsAnnotator(two_shop_shared)
        result = annotator.annotate(shopping_trip())
        sequence = result.sequence
        names = [s.region_name for s in sequence]
        assert names[0] == "Adidas"
        assert names[-1] == "Cashier"
        assert sequence[0].event == EVENT_STAY
        assert sequence[-1].event == EVENT_STAY

    def test_hall_transit_is_pass_by(self, two_shop_shared):
        annotator = MobilitySemanticsAnnotator(two_shop_shared)
        sequence = annotator.annotate(shopping_trip()).sequence
        hall = [s for s in sequence if s.region_name == "Hall"]
        assert hall and all(s.event == EVENT_PASS_BY for s in hall)

    def test_record_indexes_point_into_cleaned(self, two_shop_shared):
        annotator = MobilitySemanticsAnnotator(two_shop_shared)
        trip = shopping_trip()
        sequence = annotator.annotate(trip).sequence
        for semantic in sequence:
            assert semantic.record_indexes
            for index in semantic.record_indexes:
                assert 0 <= index < len(trip)

    def test_timeline_ordering(self, two_shop_shared):
        annotator = MobilitySemanticsAnnotator(two_shop_shared)
        sequence = annotator.annotate(shopping_trip()).sequence
        starts = [s.time_range.start for s in sequence]
        assert starts == sorted(starts)

    def test_snippets_are_reported(self, two_shop_shared):
        annotator = MobilitySemanticsAnnotator(two_shop_shared)
        result = annotator.annotate(shopping_trip())
        assert len(result.snippets) >= 3

    def test_min_duration_filters_flicker(self, two_shop_shared):
        config = AnnotatorConfig(min_semantic_duration=1e6)
        annotator = MobilitySemanticsAnnotator(two_shop_shared, config=config)
        result = annotator.annotate(shopping_trip())
        assert len(result.sequence) == 0
        assert result.skipped_snippets == len(result.snippets)

    def test_untrained_model_rejected(self, two_shop_shared):
        from repro.core.annotation import EventIdentifier

        annotator = MobilitySemanticsAnnotator(
            two_shop_shared, event_model=EventIdentifier("logistic")
        )
        with pytest.raises(AnnotationError):
            annotator.annotate(shopping_trip())

    def test_unmapped_space_skipped(self, two_shop):
        # Remove the hall region: transits through it produce no semantics.
        two_shop.remove_region("r-hall")
        annotator = MobilitySemanticsAnnotator(two_shop)
        sequence = annotator.annotate(shopping_trip()).sequence
        assert all(s.region_name != "Hall" for s in sequence)

    def test_merge_same_region_config(self, two_shop_shared):
        loose = AnnotatorConfig(
            splitter=SplitterConfig(eps_space=1.5, min_pts=6),
            merge_same_region=False,
        )
        merged_config = AnnotatorConfig(
            splitter=SplitterConfig(eps_space=1.5, min_pts=6),
            merge_same_region=True,
        )
        trip = shopping_trip()
        loose_result = MobilitySemanticsAnnotator(
            two_shop_shared, config=loose
        ).annotate(trip)
        merged_result = MobilitySemanticsAnnotator(
            two_shop_shared, config=merged_config
        ).annotate(trip)
        assert len(merged_result.sequence) <= len(loose_result.sequence)

    def test_config_validation(self):
        with pytest.raises(AnnotationError):
            AnnotatorConfig(min_semantic_duration=-1)
        with pytest.raises(AnnotationError):
            AnnotatorConfig(min_transit_coverage=2.0)

    def test_conciseness_on_simulated(self, mall3, simulated):
        annotator = MobilitySemanticsAnnotator(mall3)
        sequence = annotator.annotate(simulated.raw).sequence
        # Table 1's "more condensed form": >= 10x fewer triplets.
        assert sequence.conciseness_ratio(len(simulated.raw)) >= 10.0
