"""Unit tests for the drawing canvas, undo/redo, tags and the DSM builder."""

import pytest

from repro.dsm import EntityKind, SemanticTag
from repro.errors import DSMError
from repro.geometry import Point
from repro.spacemodel import (
    DrawingCanvas,
    ShapeStyle,
    TagLibrary,
    build_dsm,
)


@pytest.fixture
def canvas():
    c = DrawingCanvas(1)
    c.import_floorplan("plan.png", 40, 30)
    return c


class TestDrawing:
    def test_draw_rectangle_room(self, canvas):
        shape = canvas.draw_rectangle(0, 0, 10, 10, kind=EntityKind.ROOM,
                                      name="A")
        assert shape.kind is EntityKind.ROOM
        assert shape.floor == 1
        assert len(canvas) == 1

    def test_draw_polygon(self, canvas):
        shape = canvas.draw_polygon(
            [(0, 0), (10, 0), (10, 10)], kind=EntityKind.ROOM
        )
        assert len(shape.shape.vertices) == 3

    def test_draw_polyline_wall(self, canvas):
        shape = canvas.draw_polyline([(0, 0), (10, 0)])
        assert shape.kind is EntityKind.WALL

    def test_draw_circle(self, canvas):
        shape = canvas.draw_circle((5, 5), 2.0, kind=EntityKind.OBSTACLE)
        assert shape.shape.radius == 2.0

    def test_draw_door_and_entrance(self, canvas):
        door = canvas.draw_door((5, 0))
        entrance = canvas.draw_door((0, 5), entrance=True)
        assert not door.properties.get("entrance")
        assert entrance.properties.get("entrance") is True

    def test_draw_stack_connector(self, canvas):
        stair = canvas.draw_stack_connector((5, 5), stack="A")
        assert stair.properties["stack"] == "A"
        with pytest.raises(DSMError):
            canvas.draw_stack_connector((5, 5), stack="B", kind=EntityKind.DOOR)

    def test_unique_ids(self, canvas):
        a = canvas.draw_rectangle(0, 0, 1, 1, kind=EntityKind.ROOM)
        b = canvas.draw_rectangle(1, 0, 2, 1, kind=EntityKind.ROOM)
        assert a.shape_id != b.shape_id

    def test_floorplan_metadata(self, canvas):
        assert canvas.floorplan.width == 40
        assert canvas.floorplan.floor == 1


class TestSnapping:
    def test_auto_adjust_snaps_to_existing_vertex(self, canvas):
        canvas.draw_rectangle(0, 0, 10, 10, kind=EntityKind.ROOM)
        # A vertex drawn within tolerance of (10, 10) snaps onto it.
        shape = canvas.draw_polygon(
            [(10.1, 10.1), (20, 10), (20, 20)], kind=EntityKind.ROOM
        )
        assert shape.shape.vertices[0] == Point(10, 10)

    def test_snap_disabled(self, canvas):
        canvas.draw_rectangle(0, 0, 10, 10, kind=EntityKind.ROOM)
        shape = canvas.draw_polygon(
            [(10.1, 10.1), (20, 10), (20, 20)],
            kind=EntityKind.ROOM,
            snap=False,
        )
        assert shape.shape.vertices[0] == Point(10.1, 10.1)


class TestEditing:
    def test_move_shape(self, canvas):
        shape = canvas.draw_rectangle(0, 0, 10, 10, kind=EntityKind.ROOM)
        moved = canvas.move_shape(shape.shape_id, 5, 5)
        assert moved.shape.centroid.almost_equals(Point(10, 10))

    def test_rename_and_style_and_layer(self, canvas):
        shape = canvas.draw_rectangle(0, 0, 5, 5, kind=EntityKind.ROOM)
        canvas.rename_shape(shape.shape_id, "Nike")
        canvas.set_style(shape.shape_id, ShapeStyle(fill="#ff0000"))
        canvas.set_layer(shape.shape_id, "shops")
        final = canvas.get(shape.shape_id)
        assert final.name == "Nike"
        assert final.style.fill == "#ff0000"
        assert canvas.layers() == ["shops"]

    def test_group_shapes(self, canvas):
        a = canvas.draw_rectangle(0, 0, 5, 5, kind=EntityKind.ROOM)
        b = canvas.draw_rectangle(5, 0, 10, 5, kind=EntityKind.ROOM)
        canvas.group_shapes([a.shape_id, b.shape_id], "west-wing")
        assert len(canvas.shapes(group="west-wing")) == 2

    def test_delete(self, canvas):
        shape = canvas.draw_rectangle(0, 0, 5, 5, kind=EntityKind.ROOM)
        canvas.delete_shape(shape.shape_id)
        assert len(canvas) == 0
        with pytest.raises(DSMError):
            canvas.get(shape.shape_id)

    def test_assign_tag(self, canvas):
        shape = canvas.draw_rectangle(0, 0, 5, 5, kind=EntityKind.ROOM)
        tagged = canvas.assign_tag(shape.shape_id, "shop", name="Adidas")
        assert tagged.semantic_tag == "shop"
        assert tagged.name == "Adidas"


class TestUndoRedo:
    def test_undo_draw(self, canvas):
        canvas.draw_rectangle(0, 0, 5, 5, kind=EntityKind.ROOM)
        assert canvas.undo()
        assert len(canvas) == 0

    def test_redo_draw(self, canvas):
        canvas.draw_rectangle(0, 0, 5, 5, kind=EntityKind.ROOM)
        canvas.undo()
        assert canvas.redo()
        assert len(canvas) == 1

    def test_undo_edit_restores_previous(self, canvas):
        shape = canvas.draw_rectangle(0, 0, 5, 5, kind=EntityKind.ROOM,
                                      name="old")
        canvas.rename_shape(shape.shape_id, "new")
        canvas.undo()
        assert canvas.get(shape.shape_id).name == "old"

    def test_undo_delete_restores(self, canvas):
        shape = canvas.draw_rectangle(0, 0, 5, 5, kind=EntityKind.ROOM)
        canvas.delete_shape(shape.shape_id)
        canvas.undo()
        assert canvas.get(shape.shape_id).shape_id == shape.shape_id

    def test_new_action_clears_redo(self, canvas):
        canvas.draw_rectangle(0, 0, 5, 5, kind=EntityKind.ROOM)
        canvas.undo()
        canvas.draw_rectangle(1, 1, 2, 2, kind=EntityKind.ROOM)
        assert not canvas.redo()

    def test_undo_empty_returns_false(self, canvas):
        assert not canvas.undo()
        assert not canvas.redo()

    def test_deep_undo_chain(self, canvas):
        for i in range(10):
            canvas.draw_rectangle(i, 0, i + 1, 1, kind=EntityKind.ROOM)
        for _ in range(10):
            assert canvas.undo()
        assert len(canvas) == 0
        for _ in range(10):
            assert canvas.redo()
        assert len(canvas) == 10


class TestTagLibrary:
    def test_mall_defaults(self):
        library = TagLibrary.mall_defaults()
        assert "shop" in library and "cashier" in library
        assert library.get("shop").category == "shop"

    def test_duplicate_rejected(self):
        library = TagLibrary()
        library.add(SemanticTag("x"))
        with pytest.raises(DSMError):
            library.add(SemanticTag("x"))

    def test_style_fallback(self):
        library = TagLibrary.mall_defaults()
        assert library.style_for("shop").fill != library.style_for("nope").fill

    def test_save_load(self, tmp_path):
        library = TagLibrary.office_defaults()
        path = tmp_path / "tags.json"
        library.save(path)
        loaded = TagLibrary.load(path)
        assert len(loaded) == len(library)
        assert loaded.get("kitchen").category == "facility"


class TestBuildDsm:
    def _draw_floor(self):
        canvas = DrawingCanvas(1)
        hall = canvas.draw_rectangle(0, 0, 30, 10, kind=EntityKind.HALLWAY,
                                     name="Hall")
        canvas.assign_tag(hall.shape_id, "hall")
        shop = canvas.draw_rectangle(0, 10, 15, 20, kind=EntityKind.ROOM)
        canvas.assign_tag(shop.shape_id, "shop", name="Adidas")
        canvas.draw_door((7.5, 9.7), snap=False)
        canvas.draw_door((0, 5), entrance=True, snap=False)
        return canvas

    def test_builds_entities_and_regions(self):
        model = build_dsm([self._draw_floor()], name="built")
        assert model.entity_count == 4
        assert model.region_count == 2
        adidas = next(r for r in model.regions() if r.name == "Adidas")
        assert adidas.category == "shop"

    def test_region_only_shape(self):
        canvas = self._draw_floor()
        zone = canvas.draw_rectangle(10, 0, 20, 10, kind=None, name="Center")
        canvas.assign_tag(zone.shape_id, "hall")
        model = build_dsm([canvas])
        center = next(r for r in model.regions() if r.name == "Center")
        assert center.shape is not None

    def test_region_only_line_rejected(self):
        canvas = self._draw_floor()
        stroke = canvas.draw_polyline([(0, 0), (5, 5)], kind=None)
        canvas.assign_tag(stroke.shape_id, "shop")
        with pytest.raises(DSMError):
            build_dsm([canvas])

    def test_duplicate_floors_rejected(self):
        with pytest.raises(DSMError):
            build_dsm([self._draw_floor(), self._draw_floor()])

    def test_empty_rejected(self):
        with pytest.raises(DSMError):
            build_dsm([])

    def test_unknown_tag_autoregistered(self):
        canvas = self._draw_floor()
        exotic = canvas.draw_rectangle(15, 10, 30, 20, kind=EntityKind.ROOM)
        canvas.assign_tag(exotic.shape_id, "aquarium", name="Shark Tank")
        model = build_dsm([canvas])
        tank = next(r for r in model.regions() if r.name == "Shark Tank")
        assert tank.tag.name == "aquarium"
