"""Unit tests for mobility knowledge and MAP gap inference."""

import pytest

from repro.core.complementing import (
    ComplementorConfig,
    InferenceConfig,
    MobilityKnowledge,
    MobilitySemanticsComplementor,
    SemanticsInference,
)
from repro.core.semantics import (
    EVENT_PASS_BY,
    EVENT_STAY,
    MobilitySemantic,
    MobilitySemanticsSequence,
)
from repro.errors import InferenceError
from repro.timeutil import TimeRange

REGIONS = ["r-adidas", "r-cashier", "r-hall", "r-nike"]


def triplet(event, region_id, start, end, **kwargs):
    return MobilitySemantic(
        event=event,
        region_id=region_id,
        region_name=region_id[2:].title(),
        time_range=TimeRange(start, end),
        **kwargs,
    )


def corpus():
    """Many shoppers: Adidas -> Hall -> Nike is the dominant route."""
    sequences = []
    for i in range(10):
        base = i * 10000.0
        sequences.append(
            MobilitySemanticsSequence(
                f"d{i}",
                [
                    triplet(EVENT_STAY, "r-adidas", base, base + 600),
                    triplet(EVENT_PASS_BY, "r-hall", base + 610, base + 680),
                    triplet(EVENT_STAY, "r-nike", base + 690, base + 1200),
                ],
            )
        )
    # A couple of detours to the cashier so it is not unseen.
    for i in range(2):
        base = 1e6 + i * 10000.0
        sequences.append(
            MobilitySemanticsSequence(
                f"c{i}",
                [
                    triplet(EVENT_STAY, "r-nike", base, base + 300),
                    triplet(EVENT_PASS_BY, "r-hall", base + 310, base + 350),
                    triplet(EVENT_STAY, "r-cashier", base + 360, base + 500),
                ],
            )
        )
    return sequences


@pytest.fixture
def knowledge():
    return MobilityKnowledge.from_sequences(corpus(), REGIONS)


class TestKnowledge:
    def test_vocabulary_validation(self):
        with pytest.raises(InferenceError):
            MobilityKnowledge(regions=[])
        with pytest.raises(InferenceError):
            MobilityKnowledge(regions=REGIONS, smoothing=0)

    def test_transition_counts(self, knowledge):
        assert knowledge.transition_count("r-adidas", "r-hall") == 10
        assert knowledge.transition_count("r-hall", "r-nike") == 10
        assert knowledge.transition_count("r-adidas", "r-cashier") == 0

    def test_probabilities_normalized(self, knowledge):
        for origin in REGIONS:
            total = sum(
                knowledge.transition_probability(origin, dest)
                for dest in REGIONS
                if dest != origin
            )
            assert total == pytest.approx(1.0)

    def test_smoothing_no_zero_probability(self, knowledge):
        assert knowledge.transition_probability("r-adidas", "r-cashier") > 0.0

    def test_self_transition_zero(self, knowledge):
        assert knowledge.transition_probability("r-hall", "r-hall") == 0.0

    def test_unknown_region_raises(self, knowledge):
        with pytest.raises(InferenceError):
            knowledge.transition_probability("r-adidas", "r-ghost")

    def test_dwell_statistics(self, knowledge):
        stats = knowledge.region_stats("r-adidas")
        assert stats.visits == 10
        assert stats.mean_dwell == pytest.approx(600.0)
        assert stats.stay_fraction == 1.0
        hall = knowledge.region_stats("r-hall")
        assert hall.stay_fraction == 0.0

    def test_mean_dwell_default_for_unvisited(self):
        knowledge = MobilityKnowledge(regions=REGIONS)
        assert knowledge.mean_dwell("r-nike", default=42.0) == 42.0

    def test_most_likely_next(self, knowledge):
        ranked = knowledge.most_likely_next("r-adidas", top_k=2)
        assert ranked[0][0] == "r-hall"
        assert ranked[0][1] > ranked[1][1]

    def test_long_gap_transitions_not_counted(self):
        sequence = MobilitySemanticsSequence(
            "d",
            [
                triplet(EVENT_STAY, "r-adidas", 0, 100),
                triplet(EVENT_STAY, "r-nike", 10000, 10100),  # huge gap
            ],
        )
        knowledge = MobilityKnowledge.from_sequences(
            [sequence], REGIONS, max_transition_gap=600.0
        )
        assert knowledge.transition_count("r-adidas", "r-nike") == 0


class TestInference:
    def test_infers_hall_between_shops(self, knowledge, two_shop_shared):
        inference = SemanticsInference(knowledge, two_shop_shared.topology)
        gap = TimeRange(1000.0, 1090.0)  # ~90 s: walk through the hall
        inferred = inference.infer_gap("r-adidas", "r-nike", gap)
        assert [s.region_id for s in inferred] == ["r-hall"]
        assert all(s.inferred for s in inferred)
        assert inferred[0].time_range.start >= gap.start
        assert inferred[0].time_range.end <= gap.end

    def test_adjacent_regions_short_gap_nothing(self, knowledge, two_shop_shared):
        inference = SemanticsInference(knowledge, two_shop_shared.topology)
        gap = TimeRange(1000.0, 1015.0)
        inferred = inference.infer_gap("r-adidas", "r-hall", gap)
        assert inferred == []

    def test_inferred_events_follow_region_stats(
        self, knowledge, two_shop_shared
    ):
        inference = SemanticsInference(knowledge, two_shop_shared.topology)
        gap = TimeRange(1000.0, 1120.0)
        inferred = inference.infer_gap("r-adidas", "r-nike", gap)
        # The hall is never stayed in (stay_fraction 0) -> pass-by.
        assert inferred[0].event == EVENT_PASS_BY

    def test_confidence_in_unit_interval(self, knowledge, two_shop_shared):
        inference = SemanticsInference(knowledge, two_shop_shared.topology)
        inferred = inference.infer_gap(
            "r-adidas", "r-nike", TimeRange(0.0, 100.0)
        )
        for semantic in inferred:
            assert 0.0 <= semantic.confidence <= 1.0

    def test_unknown_region_raises(self, knowledge, two_shop_shared):
        inference = SemanticsInference(knowledge, two_shop_shared.topology)
        with pytest.raises(InferenceError):
            inference.infer_gap("r-ghost", "r-nike", TimeRange(0, 10))

    def test_max_hops_zero_never_infers(self, knowledge, two_shop_shared):
        inference = SemanticsInference(
            knowledge, two_shop_shared.topology, InferenceConfig(max_hops=0)
        )
        assert inference.infer_gap(
            "r-adidas", "r-nike", TimeRange(0, 500)
        ) == []

    def test_config_validation(self):
        with pytest.raises(InferenceError):
            InferenceConfig(max_hops=-1)
        with pytest.raises(InferenceError):
            InferenceConfig(duration_weight=-0.1)

    def test_best_path_prefers_duration_fit(self, knowledge, two_shop_shared):
        inference = SemanticsInference(knowledge, two_shop_shared.topology)
        # A very long gap should prefer a path with an intermediate visit
        # over the direct hop.
        long_gap_path = inference.best_path("r-adidas", "r-nike", 400.0)
        assert long_gap_path is not None
        assert len(long_gap_path.regions) >= 1


class TestComplementor:
    def _original(self):
        return MobilitySemanticsSequence(
            "oi",
            [
                triplet(EVENT_STAY, "r-adidas", 0, 600),
                # 300 s unobserved gap (walked through the hall, dropout).
                triplet(EVENT_STAY, "r-nike", 900, 1500),
            ],
        )

    def test_fills_gap(self, knowledge, two_shop_shared):
        complementor = MobilitySemanticsComplementor(
            knowledge, two_shop_shared.topology
        )
        result = complementor.complement(self._original())
        assert result.gaps_found == 1
        assert result.gaps_filled == 1
        assert result.inferred_semantics >= 1
        regions = result.sequence.region_ids
        assert regions == ["r-adidas", "r-hall", "r-nike"]

    def test_no_gaps_untouched(self, knowledge, two_shop_shared):
        sequence = MobilitySemanticsSequence(
            "oi",
            [
                triplet(EVENT_STAY, "r-adidas", 0, 600),
                triplet(EVENT_PASS_BY, "r-hall", 610, 680),
            ],
        )
        complementor = MobilitySemanticsComplementor(
            knowledge, two_shop_shared.topology
        )
        result = complementor.complement(sequence)
        assert result.gaps_found == 0
        assert result.sequence is sequence

    def test_unknown_region_gap_skipped(self, knowledge, two_shop_shared):
        sequence = MobilitySemanticsSequence(
            "oi",
            [
                MobilitySemantic(EVENT_STAY, "r-ghost", "Ghost",
                                 TimeRange(0, 100)),
                triplet(EVENT_STAY, "r-nike", 900, 1000),
            ],
        )
        complementor = MobilitySemanticsComplementor(
            knowledge, two_shop_shared.topology
        )
        result = complementor.complement(sequence)
        assert result.gaps_filled == 0

    def test_threshold_config(self, knowledge, two_shop_shared):
        config = ComplementorConfig(gap_threshold=1000.0)
        complementor = MobilitySemanticsComplementor(
            knowledge, two_shop_shared.topology, config
        )
        result = complementor.complement(self._original())
        assert result.gaps_found == 0

    def test_config_validation(self):
        with pytest.raises(InferenceError):
            ComplementorConfig(gap_threshold=0)
