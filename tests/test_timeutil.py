"""Unit tests for time parsing, formatting and TimeRange."""

import pytest

from repro.errors import TripsError
from repro.timeutil import (
    DAY,
    HOUR,
    MINUTE,
    TimeRange,
    format_clock,
    format_iso,
    parse_clock,
    parse_iso,
    ranges_cover,
)


class TestParseClock:
    def test_twelve_hour_pm(self):
        assert parse_clock("1:02:05pm") == 13 * HOUR + 2 * MINUTE + 5

    def test_twelve_hour_am(self):
        assert parse_clock("1:02:05am") == HOUR + 2 * MINUTE + 5

    def test_noon(self):
        assert parse_clock("12:00:00pm") == 12 * HOUR

    def test_midnight(self):
        assert parse_clock("12:00:00am") == 0.0

    def test_twenty_four_hour(self):
        assert parse_clock("22:15:30") == 22 * HOUR + 15 * MINUTE + 30

    def test_without_seconds(self):
        assert parse_clock("10:30am") == 10 * HOUR + 30 * MINUTE

    def test_base_day_offset(self):
        assert parse_clock("1:00:00am", base_day=DAY) == DAY + HOUR

    def test_invalid_text_raises(self):
        with pytest.raises(TripsError):
            parse_clock("not a time")

    def test_hour_out_of_range_12h(self):
        with pytest.raises(TripsError):
            parse_clock("13:00:00pm")

    def test_minutes_out_of_range(self):
        with pytest.raises(TripsError):
            parse_clock("10:61:00")


class TestFormatClock:
    def test_roundtrip_pm(self):
        assert format_clock(parse_clock("1:02:05pm")) == "1:02:05pm"

    def test_roundtrip_am(self):
        assert format_clock(parse_clock("11:59:59am")) == "11:59:59am"

    def test_midnight_renders_as_12am(self):
        assert format_clock(0.0) == "12:00:00am"

    def test_24h_format(self):
        assert format_clock(13 * HOUR + 5, twelve_hour=False) == "13:00:05"

    def test_wraps_multi_day_timestamps(self):
        assert format_clock(DAY + HOUR) == "1:00:00am"


class TestIso:
    def test_roundtrip(self):
        stamp = parse_iso("2017-01-01T10:00:00")
        assert format_iso(stamp) == "2017-01-01T10:00:00Z"

    def test_bad_iso_raises(self):
        with pytest.raises(TripsError):
            parse_iso("2017-99-99")


class TestTimeRange:
    def test_duration_and_middle(self):
        rng = TimeRange(10.0, 30.0)
        assert rng.duration == 20.0
        assert rng.middle == 20.0

    def test_inverted_raises(self):
        with pytest.raises(TripsError):
            TimeRange(5.0, 1.0)

    def test_contains_is_closed(self):
        rng = TimeRange(1.0, 2.0)
        assert rng.contains(1.0) and rng.contains(2.0)
        assert not rng.contains(0.999)

    def test_overlaps_touching(self):
        assert TimeRange(0, 1).overlaps(TimeRange(1, 2))

    def test_disjoint(self):
        assert not TimeRange(0, 1).overlaps(TimeRange(1.1, 2))

    def test_intersection(self):
        inter = TimeRange(0, 10).intersection(TimeRange(5, 20))
        assert inter == TimeRange(5, 10)

    def test_intersection_disjoint_is_none(self):
        assert TimeRange(0, 1).intersection(TimeRange(2, 3)) is None

    def test_union_span_covers_gap(self):
        assert TimeRange(0, 1).union_span(TimeRange(5, 6)) == TimeRange(0, 6)

    def test_iou_identical(self):
        assert TimeRange(3, 7).iou(TimeRange(3, 7)) == 1.0

    def test_iou_half(self):
        assert TimeRange(0, 2).iou(TimeRange(1, 3)) == pytest.approx(1 / 3)

    def test_iou_disjoint(self):
        assert TimeRange(0, 1).iou(TimeRange(5, 6)) == 0.0

    def test_iou_zero_length_identical(self):
        assert TimeRange(4, 4).iou(TimeRange(4, 4)) == 1.0

    def test_shift(self):
        assert TimeRange(1, 2).shift(10) == TimeRange(11, 12)

    def test_clip(self):
        assert TimeRange(0, 10).clip(TimeRange(5, 20)) == TimeRange(5, 10)

    def test_sorting_is_timeline_order(self):
        ranges = [TimeRange(5, 6), TimeRange(1, 9), TimeRange(1, 2)]
        assert sorted(ranges) == [TimeRange(1, 2), TimeRange(1, 9), TimeRange(5, 6)]

    def test_paper_style_format(self):
        rng = TimeRange(parse_clock("1:02:05pm"), parse_clock("1:18:15pm"))
        assert rng.format() == "1:02:05-1:18:15pm"

    def test_format_across_meridiem(self):
        rng = TimeRange(parse_clock("11:50:00am"), parse_clock("12:10:00pm"))
        assert rng.format() == "11:50:00am-12:10:00pm"


class TestRangesCover:
    def test_empty(self):
        assert ranges_cover([]) == 0.0

    def test_disjoint_sum(self):
        assert ranges_cover([TimeRange(0, 1), TimeRange(2, 3)]) == 2.0

    def test_overlapping_merge(self):
        assert ranges_cover([TimeRange(0, 5), TimeRange(3, 8)]) == 8.0

    def test_nested(self):
        assert ranges_cover([TimeRange(0, 10), TimeRange(2, 3)]) == 10.0
