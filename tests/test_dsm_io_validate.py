"""Unit tests for DSM JSON round-trip and structural validation."""

import json

import pytest

from repro.dsm import (
    DigitalSpaceModel,
    EntityKind,
    IndoorEntity,
    SemanticRegion,
    SemanticTag,
    dsm_from_dict,
    dsm_from_json,
    dsm_to_dict,
    dsm_to_json,
    load_dsm,
    save_dsm,
    shape_from_json,
    shape_to_json,
    validate_dsm,
)
from repro.errors import DSMError, DSMValidationError
from repro.geometry import Circle, Point, Polygon, Polyline, Segment


class TestShapeJson:
    @pytest.mark.parametrize(
        "shape",
        [
            Point(1.5, 2.5, 3),
            Segment(Point(0, 0, 2), Point(5, 5, 2)),
            Polyline([Point(0, 0), Point(1, 0), Point(1, 1)]),
            Polygon.rectangle(0, 0, 10, 5, floor=4),
            Circle(Point(3, 3, 2), 1.5),
        ],
    )
    def test_roundtrip(self, shape):
        assert shape_from_json(shape_to_json(shape)) == shape

    def test_unknown_type_raises(self):
        with pytest.raises(DSMError):
            shape_from_json({"type": "blob"})

    def test_malformed_raises(self):
        with pytest.raises(DSMError):
            shape_from_json({"type": "circle", "center": [1]})


class TestDsmJson:
    def test_roundtrip_preserves_structure(self, two_shop_shared):
        clone = dsm_from_dict(dsm_to_dict(two_shop_shared))
        assert clone.entity_count == two_shop_shared.entity_count
        assert clone.region_count == two_shop_shared.region_count
        assert clone.name == two_shop_shared.name
        assert [r.region_id for r in clone.regions()] == [
            r.region_id for r in two_shop_shared.regions()
        ]

    def test_roundtrip_preserves_behavior(self, two_shop_shared):
        clone = dsm_from_json(dsm_to_json(two_shop_shared))
        assert clone.partition_at(Point(5, 15)).entity_id == "shop-adidas"
        assert clone.topology.regions_adjacent("r-adidas", "r-hall")

    def test_entrance_property_survives(self, two_shop_shared):
        clone = dsm_from_json(dsm_to_json(two_shop_shared))
        assert clone.entity("door-main").is_entrance

    def test_bad_schema_version(self, two_shop_shared):
        data = dsm_to_dict(two_shop_shared)
        data["schema_version"] = 99
        with pytest.raises(DSMError):
            dsm_from_dict(data)

    def test_unknown_entity_kind(self, two_shop_shared):
        data = dsm_to_dict(two_shop_shared)
        data["entities"][0]["kind"] = "spaceship"
        with pytest.raises(DSMError):
            dsm_from_dict(data)

    def test_region_with_line_shape_rejected(self, two_shop_shared):
        data = dsm_to_dict(two_shop_shared)
        data["regions"][0]["shape"] = {
            "type": "polyline", "floor": 1, "points": [[0, 0], [1, 1]],
        }
        data["regions"][0]["entity_ids"] = []
        with pytest.raises(DSMError):
            dsm_from_dict(data)

    def test_file_roundtrip(self, two_shop_shared, tmp_path):
        path = tmp_path / "model.json"
        save_dsm(two_shop_shared, path)
        clone = load_dsm(path)
        assert clone.entity_count == two_shop_shared.entity_count
        # The file is plain JSON, editable by hand.
        payload = json.loads(path.read_text())
        assert payload["name"] == "two-shop"

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(DSMError):
            load_dsm(tmp_path / "absent.json")

    def test_malformed_json_string(self):
        with pytest.raises(DSMError):
            dsm_from_json("{not json")

    def test_mall_roundtrip(self, mall):
        clone = dsm_from_json(dsm_to_json(mall))
        assert clone.entity_count == mall.entity_count
        assert clone.region_count == mall.region_count


class TestValidation:
    def test_clean_model_passes(self, two_shop_shared):
        assert validate_dsm(two_shop_shared) == []

    def test_mall_passes(self, mall):
        assert validate_dsm(mall) == []

    def test_dangling_door_is_error(self, two_shop):
        two_shop.add_entity(
            IndoorEntity("door-lost", EntityKind.DOOR, Point(100, 100))
        )
        with pytest.raises(DSMValidationError) as info:
            validate_dsm(two_shop)
        assert any("door-lost" in p for p in info.value.problems)

    def test_single_floor_stack_is_error(self, two_shop):
        two_shop.add_entity(
            IndoorEntity(
                "stair-x", EntityKind.STAIRCASE,
                Polygon.rectangle(1, 1, 3, 3),
                properties={"stack": "X"},
            )
        )
        with pytest.raises(DSMValidationError):
            validate_dsm(two_shop)

    def test_unflagged_single_sided_door_warns(self, two_shop):
        two_shop.add_entity(
            # In the middle of the hall: attaches only to the hall.
            IndoorEntity("door-odd", EntityKind.DOOR, Point(15, 5))
        )
        warnings = validate_dsm(two_shop)
        assert any("door-odd" in w for w in warnings)

    def test_doorless_partition_warns(self, two_shop):
        two_shop.add_entity(
            IndoorEntity(
                "vault", EntityKind.ROOM, Polygon.rectangle(40, 40, 50, 50)
            )
        )
        warnings = validate_dsm(two_shop, require_connected=False)
        assert any("vault" in w for w in warnings)

    def test_disconnected_space_is_error_when_required(self, two_shop):
        two_shop.add_entity(
            IndoorEntity(
                "annex", EntityKind.ROOM, Polygon.rectangle(40, 40, 50, 50)
            )
        )
        two_shop.add_entity(
            IndoorEntity("door-annex", EntityKind.DOOR, Point(45, 40),
                         properties={"entrance": True})
        )
        with pytest.raises(DSMValidationError):
            validate_dsm(two_shop, require_connected=True)
        assert validate_dsm(two_shop, require_connected=False)

    def test_no_regions_warns_or_errors(self):
        model = DigitalSpaceModel()
        model.add_entity(
            IndoorEntity("hall", EntityKind.HALLWAY,
                         Polygon.rectangle(0, 0, 10, 10))
        )
        warnings = validate_dsm(model, require_connected=False)
        assert any("no semantic regions" in w for w in warnings)
        with pytest.raises(DSMValidationError):
            validate_dsm(model, require_regions=True, require_connected=False)

    def test_region_mapping_non_partition_is_error(self, two_shop):
        region = SemanticRegion(
            "r-bad", "Bad", SemanticTag("t"), entity_ids=("door-main",)
        )
        two_shop.add_region(region)
        with pytest.raises(DSMValidationError):
            validate_dsm(two_shop)
