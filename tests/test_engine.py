"""The parallel batch-translation engine.

The engine's contract is strict: for every backend, worker count and chunk
size, its output must be *semantically identical* to the serial
``Translator.translate_batch`` — same per-device results in the same input
order, same shared mobility knowledge — and repeated runs must be
deterministic.  Every comparison here leans on the dataclass equality of
the result objects, which covers cleaning reports, annotations, inferred
complements and confidences field by field.
"""

from __future__ import annotations

import pytest

from repro.core import Translator
from repro.core.translator import BatchStats, BatchTranslationResult, PhaseStats
from repro.engine import (
    BACKENDS,
    DEFAULT_CHUNK_SIZE,
    KNOWLEDGE_BUILDS,
    Engine,
    EngineConfig,
    SerialBackend,
    ThreadBackend,
    create_backend,
    iter_chunks,
    partition,
)
from repro.errors import AnnotationError, ConfigError
from repro.positioning import RecordStream, sequence_stream

from .conftest import make_two_shop_dsm, stationary_sequence, walk_sequence

ALL_BACKENDS = sorted(BACKENDS)


@pytest.fixture(scope="module")
def shop_translator():
    return Translator(make_two_shop_dsm())


@pytest.fixture(scope="module")
def shop_sequences():
    """Seven small sequences: dwellers in both shops plus hall walkers."""
    sequences = []
    for i in range(4):
        sequences.append(
            stationary_sequence(
                f"dwell-{i}",
                at=(5.0 if i % 2 == 0 else 15.0, 15.0, 1),
                seed=i,
                start=100.0 * i,
            )
        )
    for i in range(3):
        sequences.append(walk_sequence(f"walk-{i}", start=50.0 * i))
    return sequences


@pytest.fixture(scope="module")
def shop_serial(shop_translator, shop_sequences):
    return shop_translator.translate_batch(shop_sequences)


def assert_batches_identical(
    batch: BatchTranslationResult, reference: BatchTranslationResult
) -> None:
    assert [r.device_id for r in batch] == [r.device_id for r in reference]
    assert batch.results == reference.results
    assert batch.knowledge == reference.knowledge


# ----------------------------------------------------------------------
# Equivalence: engine output == serial translate_batch
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ALL_BACKENDS)
@pytest.mark.parametrize("chunk_size", [1, 3, 100])
def test_engine_matches_serial_all_backends(
    shop_translator, shop_sequences, shop_serial, backend, chunk_size
):
    engine = Engine(
        shop_translator,
        EngineConfig(backend=backend, workers=2, chunk_size=chunk_size),
    )
    batch = engine.translate_batch(shop_sequences)
    assert_batches_identical(batch, shop_serial)


@pytest.mark.parametrize("workers", [1, 2, 5])
def test_engine_worker_counts(
    shop_translator, shop_sequences, shop_serial, workers
):
    engine = Engine(
        shop_translator,
        EngineConfig(backend="threads", workers=workers, chunk_size=2),
    )
    assert_batches_identical(
        engine.translate_batch(shop_sequences), shop_serial
    )


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_engine_matches_serial_mall_population(
    mall3, population, backend
):
    """The acceptance benchmark: mall population, every backend."""
    translator = Translator(mall3)
    sequences = [device.raw for device in population]
    reference = translator.translate_batch(sequences)
    engine = Engine(
        translator, EngineConfig(backend=backend, workers=2, chunk_size=2)
    )
    batch = engine.translate_batch(sequences)
    assert_batches_identical(batch, reference)
    assert batch.total_records == reference.total_records
    assert batch.total_semantics == reference.total_semantics


def test_engine_deterministic_across_runs(shop_translator, shop_sequences):
    engine = Engine(
        shop_translator,
        EngineConfig(backend="threads", workers=3, chunk_size=2),
    )
    first = engine.translate_batch(shop_sequences)
    second = engine.translate_batch(shop_sequences)
    assert_batches_identical(first, second)


def test_engine_streaming_matches_batch(
    shop_translator, shop_sequences, shop_serial
):
    engine = Engine(
        shop_translator,
        EngineConfig(backend="threads", workers=2, chunk_size=2),
    )
    batch = engine.translate_stream(iter(shop_sequences))
    assert_batches_identical(batch, shop_serial)


def test_engine_empty_batch(shop_translator):
    engine = Engine(shop_translator, EngineConfig(backend="serial"))
    batch = engine.translate_batch([])
    reference = shop_translator.translate_batch([])
    assert len(batch) == 0
    assert batch.results == reference.results
    assert batch.knowledge == reference.knowledge
    assert batch.stats.chunk_count == 0


def test_engine_single_sequence(shop_translator, shop_sequences, shop_serial):
    engine = Engine(
        shop_translator, EngineConfig(backend="threads", chunk_size=1)
    )
    batch = engine.translate_batch(shop_sequences[:1])
    assert batch.results == shop_serial.results[:1]


# ----------------------------------------------------------------------
# Knowledge build strategies: sharded merge vs serial rebuild
# ----------------------------------------------------------------------
def _export_bytes(batch: BatchTranslationResult, root) -> dict[str, bytes]:
    """The per-device result files a run would write, keyed by device."""
    root.mkdir(exist_ok=True)
    exported: dict[str, bytes] = {}
    for index, result in enumerate(batch):
        path = root / f"{index}-{result.device_id}.json"
        result.export(path)
        exported[f"{index}-{result.device_id}"] = path.read_bytes()
    return exported


@pytest.mark.parametrize("backend", ALL_BACKENDS)
@pytest.mark.parametrize("chunk_size", [1, 5, 100])
def test_sharded_matches_rebuild_all_backends(
    shop_translator, shop_sequences, backend, chunk_size, tmp_path
):
    """Chunk sizes cover the degenerate (1), prime (5) and single-chunk
    (100 > batch) shardings; results must be byte-identical either way."""
    rebuild = Engine(
        shop_translator,
        EngineConfig(
            backend=backend,
            workers=2,
            chunk_size=chunk_size,
            knowledge_build="rebuild",
        ),
    ).translate_batch(shop_sequences)
    sharded = Engine(
        shop_translator,
        EngineConfig(
            backend=backend,
            workers=2,
            chunk_size=chunk_size,
            knowledge_build="sharded",
        ),
    ).translate_batch(shop_sequences)
    assert_batches_identical(sharded, rebuild)
    assert _export_bytes(sharded, tmp_path / "sharded") == _export_bytes(
        rebuild, tmp_path / "rebuild"
    )


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_sharded_matches_serial_mall_population(mall3, population, backend):
    """The default (sharded) engine still reproduces the serial reference
    on the simulated mall population, where dwell durations are arbitrary
    floats — the exact-accumulation guarantee at work."""
    translator = Translator(mall3)
    sequences = [device.raw for device in population]
    reference = translator.translate_batch(sequences)
    batch = Engine(
        translator, EngineConfig(backend=backend, workers=2, chunk_size=2)
    ).translate_batch(sequences)
    assert_batches_identical(batch, reference)


def test_sharded_is_default_strategy(shop_translator, shop_sequences):
    assert EngineConfig().knowledge_build == "sharded"
    assert set(KNOWLEDGE_BUILDS) == {"rebuild", "sharded"}
    batch = Engine(shop_translator, EngineConfig()).translate_batch(
        shop_sequences
    )
    assert batch.knowledge is not None
    assert batch.knowledge.sequences_seen == len(shop_sequences)


def test_sharded_empty_batch_matches_rebuild(shop_translator):
    sharded = Engine(
        shop_translator, EngineConfig(knowledge_build="sharded")
    ).translate_batch([])
    rebuild = Engine(
        shop_translator, EngineConfig(knowledge_build="rebuild")
    ).translate_batch([])
    assert sharded.results == rebuild.results == []
    assert sharded.knowledge == rebuild.knowledge


def test_sharded_streaming_duplicate_devices(shop_translator):
    """Regression: streaming yields one result per device per window, so a
    device can appear twice; the sharded build must preserve input order
    and by_device's first-match semantics."""
    first = stationary_sequence("dup", at=(5.0, 15.0, 1), seed=1, start=0.0)
    second = stationary_sequence(
        "dup", at=(15.0, 15.0, 1), seed=2, start=1000.0
    )
    records = sorted(
        [*first.records, *second.records], key=lambda r: r.timestamp
    )

    def windowed():
        return sequence_stream(
            RecordStream(iter(records)), window_seconds=500.0
        )

    sharded = Engine(
        shop_translator,
        EngineConfig(backend="threads", workers=2, chunk_size=1),
    ).translate_stream(windowed())
    rebuild = Engine(
        shop_translator,
        EngineConfig(chunk_size=1, knowledge_build="rebuild"),
    ).translate_stream(windowed())
    assert_batches_identical(sharded, rebuild)
    assert [r.device_id for r in sharded] == ["dup", "dup"]
    # First match wins, and it is the first *window*, not the last.
    hit = sharded.by_device("dup")
    assert hit is sharded.results[0]
    assert hit.raw.records[0].timestamp == records[0].timestamp
    # The shared knowledge saw both windows.
    assert sharded.knowledge.sequences_seen == 2


# ----------------------------------------------------------------------
# Stats
# ----------------------------------------------------------------------
def test_engine_stats_phases(shop_translator, shop_sequences):
    engine = Engine(
        shop_translator,
        EngineConfig(backend="threads", workers=2, chunk_size=3),
    )
    batch = engine.translate_batch(shop_sequences)
    stats = batch.stats
    assert stats.backend == "threads"
    assert stats.workers == 2
    assert stats.chunk_size == 3
    assert stats.chunk_count == 3  # 7 sequences in chunks of 3
    assert [p.name for p in stats.phases] == [
        "clean+annotate",
        "knowledge",
        "complement",
    ]
    assert all(p.items == len(shop_sequences) for p in stats.phases)
    assert stats.phase("knowledge").seconds >= 0.0
    assert stats.total_seconds == pytest.approx(
        sum(p.seconds for p in stats.phases)
    )
    assert "threads" in stats.format_table()
    with pytest.raises(KeyError):
        stats.phase("no-such-phase")


class _AmnesiacBackend(SerialBackend):
    """A backend that forgets its identity once closed.

    Pins the fix for BatchStats being filled from ``backend.name`` /
    ``backend.workers`` *after* ``backend.close()``: the engine must
    capture both before the pool is torn down.
    """

    name = "amnesiac"

    def close(self) -> None:
        super().close()
        self.name = "closed"  # instance attr shadows the class attr
        self.workers = -1


def test_stats_captured_before_backend_close(
    shop_translator, shop_sequences, monkeypatch
):
    monkeypatch.setitem(BACKENDS, _AmnesiacBackend.name, _AmnesiacBackend)
    engine = Engine(shop_translator, EngineConfig(backend="amnesiac"))
    batch = engine.translate_batch(shop_sequences)
    assert batch.stats.backend == "amnesiac"
    assert batch.stats.workers == 1


def test_serial_translate_batch_reports_inline_stats(shop_serial):
    assert shop_serial.stats is not None
    assert shop_serial.stats.backend == "inline"
    assert shop_serial.stats.workers == 1


def test_phase_stats_throughput():
    stats = PhaseStats("clean+annotate", seconds=2.0, items=10)
    assert stats.items_per_second == 5.0
    assert PhaseStats("x", seconds=0.0, items=10).items_per_second == 0.0
    empty = BatchStats(backend="serial", workers=1, chunk_size=1, chunk_count=0)
    assert empty.total_seconds == 0.0


# ----------------------------------------------------------------------
# by_device index
# ----------------------------------------------------------------------
def test_by_device_lookup(shop_serial, shop_sequences):
    for sequence in shop_sequences:
        assert shop_serial.by_device(sequence.device_id).raw is sequence
    with pytest.raises(AnnotationError):
        shop_serial.by_device("no-such-device")


def test_by_device_duplicate_ids_first_match(shop_translator):
    """Streaming yields one result per device per window, so duplicate
    device ids are legal — by_device keeps the first, in iteration order,
    and stays O(1) (no per-call rebuild) despite the duplicates."""
    first = stationary_sequence("dup", at=(5.0, 15.0, 1), seed=1, start=0.0)
    second = stationary_sequence(
        "dup", at=(15.0, 15.0, 1), seed=2, start=1000.0
    )
    batch = shop_translator.translate_batch([first, second])
    assert batch.by_device("dup").raw is first
    assert batch._indexed_count == len(batch.results)
    # A second lookup must not trigger a rebuild.
    index = batch._device_index
    assert batch.by_device("dup").raw is first
    assert batch._device_index is index


def test_by_device_index_tracks_mutation(shop_translator, shop_sequences):
    batch = shop_translator.translate_batch(shop_sequences[:2])
    assert batch.by_device(shop_sequences[0].device_id)
    extra = shop_translator.translate_batch(shop_sequences[2:3])
    batch.results.append(extra.results[0])
    assert (
        batch.by_device(shop_sequences[2].device_id) is extra.results[0]
    )


# ----------------------------------------------------------------------
# Configuration and backend registry
# ----------------------------------------------------------------------
def test_engine_config_validation():
    with pytest.raises(ConfigError):
        EngineConfig(backend="bogus")
    with pytest.raises(ConfigError):
        EngineConfig(workers=0)
    with pytest.raises(ConfigError):
        EngineConfig(chunk_size=0)
    with pytest.raises(ConfigError):
        EngineConfig(knowledge_build="bogus")
    assert EngineConfig().chunk_size == DEFAULT_CHUNK_SIZE


def test_create_backend_registry():
    for name in ALL_BACKENDS:
        backend = create_backend(name, workers=2)
        assert backend.name == name
    with pytest.raises(ConfigError):
        create_backend("bogus")
    with pytest.raises(ConfigError):
        create_backend("threads", workers=0)


def test_pool_backend_requires_open():
    backend = ThreadBackend(workers=2)
    with pytest.raises(ConfigError):
        list(backend.map(lambda ctx, p: p, [1, 2]))
    backend.open(None)
    assert list(backend.map(lambda ctx, p: p * 2, [1, 2, 3])) == [2, 4, 6]
    backend.close()


def test_backend_map_preserves_order():
    backend = create_backend("threads", workers=4)
    backend.open("ctx")
    payloads = list(range(50))
    assert list(backend.map(lambda ctx, p: (ctx, p), payloads)) == [
        ("ctx", p) for p in payloads
    ]
    backend.close()


# ----------------------------------------------------------------------
# Chunking
# ----------------------------------------------------------------------
def test_partition_shapes():
    assert partition([], 3) == []
    assert partition([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]
    assert partition([1, 2, 3], 3) == [[1, 2, 3]]
    assert partition([1, 2], 100) == [[1, 2]]
    assert partition([1, 2, 3], 1) == [[1], [2], [3]]


def test_iter_chunks_is_lazy():
    pulled: list[int] = []

    def source():
        for i in range(10):
            pulled.append(i)
            yield i

    chunks = iter_chunks(source(), 3)
    assert next(chunks) == [0, 1, 2]
    assert pulled == [0, 1, 2]
    assert next(chunks) == [3, 4, 5]
    assert pulled == [0, 1, 2, 3, 4, 5]


def test_iter_chunks_rejects_bad_size():
    with pytest.raises(ConfigError):
        list(iter_chunks([1, 2], 0))
