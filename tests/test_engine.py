"""The parallel batch-translation engine.

The engine's contract is strict: for every backend, worker count and chunk
size, its output must be *semantically identical* to the serial
``Translator.translate_batch`` — same per-device results in the same input
order, same shared mobility knowledge — and repeated runs must be
deterministic.  Every comparison here leans on the dataclass equality of
the result objects, which covers cleaning reports, annotations, inferred
complements and confidences field by field.
"""

from __future__ import annotations

import pytest

from repro.core import Translator
from repro.core.translator import BatchStats, BatchTranslationResult, PhaseStats
from repro.engine import (
    BACKENDS,
    DEFAULT_CHUNK_SIZE,
    KNOWLEDGE_BUILDS,
    Engine,
    EngineConfig,
    SerialBackend,
    SharedValue,
    ThreadBackend,
    create_backend,
    iter_chunks,
    partition,
    resolve_shared,
)
from repro.errors import AnnotationError, ConfigError
from repro.positioning import RecordStream, sequence_stream, windowed_sequences

from .conftest import make_two_shop_dsm, stationary_sequence, walk_sequence

ALL_BACKENDS = sorted(BACKENDS)


@pytest.fixture(scope="module")
def shop_translator():
    return Translator(make_two_shop_dsm())


@pytest.fixture(scope="module")
def shop_sequences():
    """Seven small sequences: dwellers in both shops plus hall walkers."""
    sequences = []
    for i in range(4):
        sequences.append(
            stationary_sequence(
                f"dwell-{i}",
                at=(5.0 if i % 2 == 0 else 15.0, 15.0, 1),
                seed=i,
                start=100.0 * i,
            )
        )
    for i in range(3):
        sequences.append(walk_sequence(f"walk-{i}", start=50.0 * i))
    return sequences


@pytest.fixture(scope="module")
def shop_serial(shop_translator, shop_sequences):
    return shop_translator.translate_batch(shop_sequences)


def assert_batches_identical(
    batch: BatchTranslationResult, reference: BatchTranslationResult
) -> None:
    assert [r.device_id for r in batch] == [r.device_id for r in reference]
    assert batch.results == reference.results
    assert batch.knowledge == reference.knowledge


# ----------------------------------------------------------------------
# Equivalence: engine output == serial translate_batch
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ALL_BACKENDS)
@pytest.mark.parametrize("chunk_size", [1, 3, 100])
def test_engine_matches_serial_all_backends(
    shop_translator, shop_sequences, shop_serial, backend, chunk_size
):
    engine = Engine(
        shop_translator,
        EngineConfig(backend=backend, workers=2, chunk_size=chunk_size),
    )
    batch = engine.translate_batch(shop_sequences)
    assert_batches_identical(batch, shop_serial)


@pytest.mark.parametrize("workers", [1, 2, 5])
def test_engine_worker_counts(
    shop_translator, shop_sequences, shop_serial, workers
):
    engine = Engine(
        shop_translator,
        EngineConfig(backend="threads", workers=workers, chunk_size=2),
    )
    assert_batches_identical(
        engine.translate_batch(shop_sequences), shop_serial
    )


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_engine_matches_serial_mall_population(
    mall3, population, backend
):
    """The acceptance benchmark: mall population, every backend."""
    translator = Translator(mall3)
    sequences = [device.raw for device in population]
    reference = translator.translate_batch(sequences)
    engine = Engine(
        translator, EngineConfig(backend=backend, workers=2, chunk_size=2)
    )
    batch = engine.translate_batch(sequences)
    assert_batches_identical(batch, reference)
    assert batch.total_records == reference.total_records
    assert batch.total_semantics == reference.total_semantics


def test_engine_deterministic_across_runs(shop_translator, shop_sequences):
    engine = Engine(
        shop_translator,
        EngineConfig(backend="threads", workers=3, chunk_size=2),
    )
    first = engine.translate_batch(shop_sequences)
    second = engine.translate_batch(shop_sequences)
    assert_batches_identical(first, second)


def test_engine_streaming_matches_batch(
    shop_translator, shop_sequences, shop_serial
):
    engine = Engine(
        shop_translator,
        EngineConfig(backend="threads", workers=2, chunk_size=2),
    )
    batch = engine.translate_stream(iter(shop_sequences))
    assert_batches_identical(batch, shop_serial)


def test_engine_empty_batch(shop_translator):
    engine = Engine(shop_translator, EngineConfig(backend="serial"))
    batch = engine.translate_batch([])
    reference = shop_translator.translate_batch([])
    assert len(batch) == 0
    assert batch.results == reference.results
    assert batch.knowledge == reference.knowledge
    assert batch.stats.chunk_count == 0


def test_engine_single_sequence(shop_translator, shop_sequences, shop_serial):
    engine = Engine(
        shop_translator, EngineConfig(backend="threads", chunk_size=1)
    )
    batch = engine.translate_batch(shop_sequences[:1])
    assert batch.results == shop_serial.results[:1]


# ----------------------------------------------------------------------
# Knowledge build strategies: sharded merge vs serial rebuild
# ----------------------------------------------------------------------
def _export_bytes(batch: BatchTranslationResult, root) -> dict[str, bytes]:
    """The per-device result files a run would write, keyed by device."""
    root.mkdir(exist_ok=True)
    exported: dict[str, bytes] = {}
    for index, result in enumerate(batch):
        path = root / f"{index}-{result.device_id}.json"
        result.export(path)
        exported[f"{index}-{result.device_id}"] = path.read_bytes()
    return exported


@pytest.mark.parametrize("backend", ALL_BACKENDS)
@pytest.mark.parametrize("chunk_size", [1, 5, 100])
def test_sharded_matches_rebuild_all_backends(
    shop_translator, shop_sequences, backend, chunk_size, tmp_path
):
    """Chunk sizes cover the degenerate (1), prime (5) and single-chunk
    (100 > batch) shardings; results must be byte-identical either way."""
    rebuild = Engine(
        shop_translator,
        EngineConfig(
            backend=backend,
            workers=2,
            chunk_size=chunk_size,
            knowledge_build="rebuild",
        ),
    ).translate_batch(shop_sequences)
    sharded = Engine(
        shop_translator,
        EngineConfig(
            backend=backend,
            workers=2,
            chunk_size=chunk_size,
            knowledge_build="sharded",
        ),
    ).translate_batch(shop_sequences)
    assert_batches_identical(sharded, rebuild)
    assert _export_bytes(sharded, tmp_path / "sharded") == _export_bytes(
        rebuild, tmp_path / "rebuild"
    )


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_sharded_matches_serial_mall_population(mall3, population, backend):
    """The default (sharded) engine still reproduces the serial reference
    on the simulated mall population, where dwell durations are arbitrary
    floats — the exact-accumulation guarantee at work."""
    translator = Translator(mall3)
    sequences = [device.raw for device in population]
    reference = translator.translate_batch(sequences)
    batch = Engine(
        translator, EngineConfig(backend=backend, workers=2, chunk_size=2)
    ).translate_batch(sequences)
    assert_batches_identical(batch, reference)


def test_sharded_is_default_strategy(shop_translator, shop_sequences):
    assert EngineConfig().knowledge_build == "sharded"
    assert set(KNOWLEDGE_BUILDS) == {"rebuild", "sharded"}
    batch = Engine(shop_translator, EngineConfig()).translate_batch(
        shop_sequences
    )
    assert batch.knowledge is not None
    assert batch.knowledge.sequences_seen == len(shop_sequences)


def test_sharded_empty_batch_matches_rebuild(shop_translator):
    sharded = Engine(
        shop_translator, EngineConfig(knowledge_build="sharded")
    ).translate_batch([])
    rebuild = Engine(
        shop_translator, EngineConfig(knowledge_build="rebuild")
    ).translate_batch([])
    assert sharded.results == rebuild.results == []
    assert sharded.knowledge == rebuild.knowledge


def test_sharded_streaming_duplicate_devices(shop_translator):
    """Regression: streaming yields one result per device per window, so a
    device can appear twice; the sharded build must preserve input order
    and by_device's first-match semantics."""
    first = stationary_sequence("dup", at=(5.0, 15.0, 1), seed=1, start=0.0)
    second = stationary_sequence(
        "dup", at=(15.0, 15.0, 1), seed=2, start=1000.0
    )
    records = sorted(
        [*first.records, *second.records], key=lambda r: r.timestamp
    )

    def windowed():
        return sequence_stream(
            RecordStream(iter(records)), window_seconds=500.0
        )

    sharded = Engine(
        shop_translator,
        EngineConfig(backend="threads", workers=2, chunk_size=1),
    ).translate_stream(windowed())
    rebuild = Engine(
        shop_translator,
        EngineConfig(chunk_size=1, knowledge_build="rebuild"),
    ).translate_stream(windowed())
    assert_batches_identical(sharded, rebuild)
    assert [r.device_id for r in sharded] == ["dup", "dup"]
    # First match wins, and it is the first *window*, not the last.
    hit = sharded.by_device("dup")
    assert hit is sharded.results[0]
    assert hit.raw.records[0].timestamp == records[0].timestamp
    # The shared knowledge saw both windows.
    assert sharded.knowledge.sequences_seen == 2


# ----------------------------------------------------------------------
# Incremental window translation (the live service's unit of work)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("strategy", KNOWLEDGE_BUILDS)
def test_translate_increment_folds_to_batch_knowledge(
    shop_translator, shop_sequences, shop_serial, strategy
):
    """Folding every window's shard reproduces the one-shot batch
    knowledge bit for bit, under either barrier strategy."""
    engine = Engine(
        shop_translator,
        EngineConfig(chunk_size=2, knowledge_build=strategy),
    )
    knowledge = None
    window_results = []
    for start in range(0, len(shop_sequences), 2):
        window = shop_sequences[start : start + 2]
        batch, knowledge = engine.translate_increment(window, knowledge)
        window_results.extend(batch.results)
    assert knowledge == shop_serial.knowledge
    assert [r.device_id for r in window_results] == [
        r.device_id for r in shop_serial.results
    ]
    # Re-complementing against the final knowledge reproduces the batch.
    complements = engine.complement(
        [r.annotation.sequence for r in window_results], knowledge
    )
    assert complements == [r.complement for r in shop_serial.results]


def test_translate_increment_windowed_stream(shop_translator):
    """Increment-per-window over a RecordStream equals translate_stream
    over the same windowed sequences (results aside from complements
    computed against partial knowledge, which finalize reconciles)."""
    records = sorted(
        (
            r
            for i in range(3)
            for r in stationary_sequence(
                f"s-{i}", at=(5.0, 15.0, 1), seed=i, start=200.0 * i
            ).records
        ),
        key=lambda r: (r.timestamp, r.device_id),
    )
    engine = Engine(shop_translator, EngineConfig(chunk_size=2))
    knowledge = None
    count = 0
    for window in windowed_sequences(RecordStream(iter(records)), 100.0):
        batch, knowledge = engine.translate_increment(window, knowledge)
        count += len(batch)
    reference = engine.translate_stream(
        sequence_stream(RecordStream(iter(records)), 100.0)
    )
    assert count == len(reference)
    assert knowledge == reference.knowledge


def test_translate_increment_complementing_disabled(shop_sequences):
    from repro.core import TranslatorConfig

    translator = Translator(
        make_two_shop_dsm(),
        config=TranslatorConfig(enable_complementing=False),
    )
    engine = Engine(translator, EngineConfig())
    batch, knowledge = engine.translate_increment(shop_sequences[:2])
    assert knowledge is None
    assert batch.knowledge is None
    assert all(r.complement is None for r in batch)


# ----------------------------------------------------------------------
# Shared backends and warm pools
# ----------------------------------------------------------------------
def test_engines_share_one_backend(shop_translator, shop_sequences, shop_serial):
    """Two engines (venue keys) interleave batches on one open pool."""
    backend = create_backend("threads", workers=2)
    backend.open({"east": shop_translator, "west": shop_translator})
    try:
        east = Engine(
            shop_translator,
            EngineConfig(chunk_size=2),
            backend=backend,
            context_key="east",
        )
        west = Engine(
            shop_translator,
            EngineConfig(chunk_size=3),
            backend=backend,
            context_key="west",
        )
        first = east.translate_batch(shop_sequences)
        second = west.translate_batch(shop_sequences)
        third = east.translate_batch(shop_sequences)
    finally:
        backend.close()
    for batch in (first, second, third):
        assert batch.results == shop_serial.results
        assert batch.knowledge == shop_serial.knowledge
    assert first.stats.backend == "threads"


def test_process_pool_stays_warm_across_phases(shop_translator, shop_sequences):
    """The phase-two barrier must not restart the process pool: the
    translator ships once at open, only the knowledge travels after."""
    backend = create_backend("processes", workers=2)
    backend.open({"default": shop_translator})
    try:
        pool = backend._pool
        assert pool is not None
        engine = Engine(
            shop_translator, EngineConfig(chunk_size=2), backend=backend
        )
        batch = engine.translate_batch(shop_sequences)
        assert batch.knowledge is not None  # phase two actually ran
        assert backend._pool is pool  # same pool object: never restarted
        again = engine.translate_batch(shop_sequences)
        assert backend._pool is pool
        assert again.results == batch.results
    finally:
        backend.close()


@pytest.mark.parametrize("backend_name", ["serial", "threads"])
def test_share_and_release_inproc(backend_name):
    backend = create_backend(backend_name, workers=2)
    backend.open(None)
    token = backend.share({"answer": 42})
    assert isinstance(token, SharedValue)
    assert token.kind == "inproc"
    assert resolve_shared(token) == {"answer": 42}
    backend.release(token)
    with pytest.raises(ConfigError):
        resolve_shared(token)
    backend.close()


def test_close_releases_outstanding_tokens():
    backend = create_backend("serial")
    backend.open(None)
    token = backend.share("value")
    backend.close()
    with pytest.raises(ConfigError):
        resolve_shared(token)


def test_share_pickled_resolves_and_caches():
    backend = create_backend("processes", workers=1)
    token = backend.share({"k": [1, 2, 3]})
    assert token.kind == "pickled"
    first = resolve_shared(token)
    assert first == {"k": [1, 2, 3]}
    # Cached per generation: same object back on the second resolve.
    assert resolve_shared(token) is first
    backend.release(token)  # no-op, must not raise


# ----------------------------------------------------------------------
# Phase-one cache
# ----------------------------------------------------------------------
def _counting_translator(counter):
    translator = Translator(make_two_shop_dsm())
    original = translator.clean_and_annotate

    def counted(sequence):
        counter.append(sequence.device_id)
        return original(sequence)

    translator.clean_and_annotate = counted
    return translator


@pytest.mark.parametrize("strategy", KNOWLEDGE_BUILDS)
def test_phase_one_cache_skips_repeat_work(
    shop_sequences, shop_serial, strategy
):
    calls: list[str] = []
    translator = _counting_translator(calls)
    engine = Engine(
        translator,
        EngineConfig(
            chunk_size=2,
            knowledge_build=strategy,
            phase_one_cache=32,
            # Call counting instruments clean_and_annotate, which only the
            # object layout invokes — pin it so the columnar CI leg
            # (TRIPS_RECORD_LAYOUT=columnar) still counts misses.
            record_layout="objects",
        ),
    )
    first = engine.translate_batch(shop_sequences)
    assert len(calls) == len(shop_sequences)
    second = engine.translate_batch(shop_sequences)
    assert len(calls) == len(shop_sequences)  # all hits: no new phase one
    assert first.results == second.results == shop_serial.results
    assert first.knowledge == second.knowledge == shop_serial.knowledge


def test_phase_one_cache_partial_hits(shop_sequences, shop_serial):
    calls: list[str] = []
    translator = _counting_translator(calls)
    engine = Engine(
        translator,
        EngineConfig(
            chunk_size=3, phase_one_cache=32, record_layout="objects"
        ),
    )
    engine.translate_batch(shop_sequences[:4])
    assert len(calls) == 4
    batch = engine.translate_batch(shop_sequences)
    assert len(calls) == len(shop_sequences)  # only the 3 new sequences
    assert batch.results == shop_serial.results
    assert batch.knowledge == shop_serial.knowledge


def test_phase_one_cache_evicts_lru(shop_sequences):
    calls: list[str] = []
    translator = _counting_translator(calls)
    engine = Engine(
        translator,
        EngineConfig(
            chunk_size=2, phase_one_cache=2, record_layout="objects"
        ),
    )
    engine.translate_batch(shop_sequences)
    before = len(calls)
    engine.translate_batch(shop_sequences[-2:])  # the two still cached
    assert len(calls) == before
    engine.translate_batch(shop_sequences[:2])  # evicted: recomputed
    assert len(calls) == before + 2


def test_phase_one_cache_off_by_default(shop_sequences):
    calls: list[str] = []
    translator = _counting_translator(calls)
    engine = Engine(
        translator, EngineConfig(chunk_size=2, record_layout="objects")
    )
    engine.translate_batch(shop_sequences[:2])
    engine.translate_batch(shop_sequences[:2])
    assert len(calls) == 4
    assert engine._phase_one_cache is None


# ----------------------------------------------------------------------
# Stats
# ----------------------------------------------------------------------
def test_engine_stats_phases(shop_translator, shop_sequences):
    engine = Engine(
        shop_translator,
        EngineConfig(backend="threads", workers=2, chunk_size=3),
    )
    batch = engine.translate_batch(shop_sequences)
    stats = batch.stats
    assert stats.backend == "threads"
    assert stats.workers == 2
    assert stats.chunk_size == 3
    assert stats.chunk_count == 3  # 7 sequences in chunks of 3
    assert [p.name for p in stats.phases] == [
        "clean+annotate",
        "knowledge",
        "complement",
    ]
    assert all(p.items == len(shop_sequences) for p in stats.phases)
    assert stats.phase("knowledge").seconds >= 0.0
    assert stats.total_seconds == pytest.approx(
        sum(p.seconds for p in stats.phases)
    )
    assert "threads" in stats.format_table()
    with pytest.raises(KeyError):
        stats.phase("no-such-phase")


class _AmnesiacBackend(SerialBackend):
    """A backend that forgets its identity once closed.

    Pins the fix for BatchStats being filled from ``backend.name`` /
    ``backend.workers`` *after* ``backend.close()``: the engine must
    capture both before the pool is torn down.
    """

    name = "amnesiac"

    def close(self) -> None:
        super().close()
        self.name = "closed"  # instance attr shadows the class attr
        self.workers = -1


def test_stats_captured_before_backend_close(
    shop_translator, shop_sequences, monkeypatch
):
    monkeypatch.setitem(BACKENDS, _AmnesiacBackend.name, _AmnesiacBackend)
    engine = Engine(shop_translator, EngineConfig(backend="amnesiac"))
    batch = engine.translate_batch(shop_sequences)
    assert batch.stats.backend == "amnesiac"
    assert batch.stats.workers == 1


def test_serial_translate_batch_reports_inline_stats(shop_serial):
    assert shop_serial.stats is not None
    assert shop_serial.stats.backend == "inline"
    assert shop_serial.stats.workers == 1


def test_phase_stats_throughput():
    stats = PhaseStats("clean+annotate", seconds=2.0, items=10)
    assert stats.items_per_second == 5.0
    assert PhaseStats("x", seconds=0.0, items=10).items_per_second == 0.0
    empty = BatchStats(backend="serial", workers=1, chunk_size=1, chunk_count=0)
    assert empty.total_seconds == 0.0


# ----------------------------------------------------------------------
# by_device index
# ----------------------------------------------------------------------
def test_by_device_lookup(shop_serial, shop_sequences):
    for sequence in shop_sequences:
        assert shop_serial.by_device(sequence.device_id).raw is sequence
    with pytest.raises(AnnotationError):
        shop_serial.by_device("no-such-device")


def test_by_device_duplicate_ids_first_match(shop_translator):
    """Streaming yields one result per device per window, so duplicate
    device ids are legal — by_device keeps the first, in iteration order,
    and stays O(1) (no per-call rebuild) despite the duplicates."""
    first = stationary_sequence("dup", at=(5.0, 15.0, 1), seed=1, start=0.0)
    second = stationary_sequence(
        "dup", at=(15.0, 15.0, 1), seed=2, start=1000.0
    )
    batch = shop_translator.translate_batch([first, second])
    assert batch.by_device("dup").raw is first
    assert batch._indexed_count == len(batch.results)
    # A second lookup must not trigger a rebuild.
    index = batch._device_index
    assert batch.by_device("dup").raw is first
    assert batch._device_index is index


def test_by_device_index_tracks_mutation(shop_translator, shop_sequences):
    batch = shop_translator.translate_batch(shop_sequences[:2])
    assert batch.by_device(shop_sequences[0].device_id)
    extra = shop_translator.translate_batch(shop_sequences[2:3])
    batch.results.append(extra.results[0])
    assert (
        batch.by_device(shop_sequences[2].device_id) is extra.results[0]
    )


# ----------------------------------------------------------------------
# Configuration and backend registry
# ----------------------------------------------------------------------
def test_engine_config_validation():
    with pytest.raises(ConfigError):
        EngineConfig(backend="bogus")
    with pytest.raises(ConfigError):
        EngineConfig(workers=0)
    with pytest.raises(ConfigError):
        EngineConfig(chunk_size=0)
    with pytest.raises(ConfigError):
        EngineConfig(knowledge_build="bogus")
    assert EngineConfig().chunk_size == DEFAULT_CHUNK_SIZE


def test_create_backend_registry():
    for name in ALL_BACKENDS:
        backend = create_backend(name, workers=2)
        assert backend.name == name
    with pytest.raises(ConfigError):
        create_backend("bogus")
    with pytest.raises(ConfigError):
        create_backend("threads", workers=0)


def test_pool_backend_requires_open():
    backend = ThreadBackend(workers=2)
    with pytest.raises(ConfigError):
        list(backend.map(lambda ctx, p: p, [1, 2]))
    backend.open(None)
    assert list(backend.map(lambda ctx, p: p * 2, [1, 2, 3])) == [2, 4, 6]
    backend.close()


def test_backend_map_preserves_order():
    backend = create_backend("threads", workers=4)
    backend.open("ctx")
    payloads = list(range(50))
    assert list(backend.map(lambda ctx, p: (ctx, p), payloads)) == [
        ("ctx", p) for p in payloads
    ]
    backend.close()


# ----------------------------------------------------------------------
# Chunking
# ----------------------------------------------------------------------
def test_partition_shapes():
    assert partition([], 3) == []
    assert partition([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]
    assert partition([1, 2, 3], 3) == [[1, 2, 3]]
    assert partition([1, 2], 100) == [[1, 2]]
    assert partition([1, 2, 3], 1) == [[1], [2], [3]]


def test_iter_chunks_is_lazy():
    pulled: list[int] = []

    def source():
        for i in range(10):
            pulled.append(i)
            yield i

    chunks = iter_chunks(source(), 3)
    assert next(chunks) == [0, 1, 2]
    assert pulled == [0, 1, 2]
    assert next(chunks) == [3, 4, 5]
    assert pulled == [0, 1, 2, 3, 4, 5]


def test_iter_chunks_rejects_bad_size():
    with pytest.raises(ConfigError):
        list(iter_chunks([1, 2], 0))
